package telemetry

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSpanIDsSequentialAndDeterministic(t *testing.T) {
	mk := func() *Registry {
		r := New(Config{})
		root := r.StartSpan("pc3d.search", 100, 0)
		kid := r.StartSpan("pc3d.variant_eval", 110, root)
		r.SpanAttrs(kid, Num("mask_size", 3), Str("status", "ok"))
		r.EndSpan(kid, 150)
		r.EndSpan(root, 200)
		return r
	}
	a, b := mk(), mk()
	as, bs := a.Spans(), b.Spans()
	if len(as) != 2 || len(bs) != 2 {
		t.Fatalf("spans = %d/%d, want 2/2", len(as), len(bs))
	}
	if as[0].ID != 1 || as[1].ID != 2 {
		t.Errorf("IDs = %d,%d, want sequential 1,2", as[0].ID, as[1].ID)
	}
	if as[1].Parent != as[0].ID {
		t.Errorf("child parent = %d, want %d", as[1].Parent, as[0].ID)
	}
	if as[1].Duration() != 40 {
		t.Errorf("child duration = %d, want 40", as[1].Duration())
	}
	if a.ChromeTraceJSON() != b.ChromeTraceJSON() {
		t.Error("identical span trees exported different Chrome JSON")
	}
}

func TestSpanStoreDropsNewest(t *testing.T) {
	r := New(Config{SpanCap: 2})
	a := r.StartSpan("x.a", 1, 0)
	b := r.StartSpan("x.b", 2, a)
	c := r.StartSpan("x.c", 3, b) // over cap: dropped
	if a == 0 || b == 0 {
		t.Fatal("in-cap spans returned 0")
	}
	if c != 0 {
		t.Fatalf("over-cap StartSpan = %d, want 0", c)
	}
	// Operations on the dropped ID are safe no-ops.
	r.SpanAttrs(c, Str("k", "v"))
	r.EndSpan(c, 9)
	if got := len(r.Spans()); got != 2 {
		t.Errorf("retained spans = %d, want 2", got)
	}
	if r.DroppedSpans() != 1 {
		t.Errorf("DroppedSpans = %d, want 1", r.DroppedSpans())
	}
	if !strings.Contains(r.PrometheusText(), "protean_telemetry_spans_dropped_total 1") {
		t.Error("spans_dropped counter not exported")
	}
}

func TestSpanDisabledAndNil(t *testing.T) {
	var nilr *Registry
	if nilr.StartSpan("x", 1, 0) != 0 || nilr.SpanEnabled() {
		t.Error("nil registry recorded a span")
	}
	r := New(Config{SpanCap: -1})
	if r.SpanEnabled() {
		t.Fatal("SpanCap<0 should disable spans")
	}
	if id := r.StartSpan("x", 1, 0); id != 0 {
		t.Errorf("disabled StartSpan = %d, want 0", id)
	}
	if r.Spans() != nil {
		t.Error("disabled spans produced output")
	}
}

func TestSpanAmbientParent(t *testing.T) {
	r := New(Config{})
	root := r.StartSpan("pc3d.search", 0, 0)
	prev := r.SetSpanParent(root)
	if prev != 0 {
		t.Errorf("initial ambient = %d, want 0", prev)
	}
	// A subsystem that cannot see root still nests under it.
	kid := r.StartSpan("core.compile", 5, r.SpanParent())
	if s, _ := r.Span(kid); s.Parent != root {
		t.Errorf("ambient-parented span got parent %d, want %d", s.Parent, root)
	}
	if got := r.SetSpanParent(prev); got != root {
		t.Errorf("restore returned %d, want %d", got, root)
	}
	if r.SpanParent() != 0 {
		t.Error("ambient parent not restored")
	}
}

// TestSpanMergeRemapDeterministic: fleet rollup remaps (server, local ID)
// to a fixed 64-bit ID, so merging the same per-server registries in index
// order yields identical bytes regardless of how the servers simulated.
func TestSpanMergeRemapDeterministic(t *testing.T) {
	mkServer := func(start uint64) *Registry {
		r := New(Config{})
		root := r.StartSpan("supervise.recovery", start, 0)
		kid := r.StartSpan("supervise.backoff", start+1, root)
		r.EndSpan(kid, start+5)
		r.EndSpan(root, start+10)
		return r
	}
	merge := func() *Registry {
		agg := New(Config{})
		agg.MergeFrom(mkServer(100), 0)
		agg.MergeFrom(mkServer(50), 1)
		return agg
	}
	a, b := merge(), merge()
	if a.ChromeTraceJSON() != b.ChromeTraceJSON() {
		t.Fatal("identical merges exported different Chrome JSON")
	}
	sp := a.Spans()
	if len(sp) != 4 {
		t.Fatalf("merged spans = %d, want 4", len(sp))
	}
	// Canonical order: server 1's earlier spans first.
	if sp[0].Server != 1 || sp[0].Start != 50 {
		t.Errorf("first span = server %d @%d, want server 1 @50", sp[0].Server, sp[0].Start)
	}
	wantRoot := SpanID(2<<32 | 1)
	if sp[0].ID != wantRoot {
		t.Errorf("remapped root ID = %d, want %d", sp[0].ID, wantRoot)
	}
	if sp[1].Parent != wantRoot {
		t.Errorf("remapped child parent = %d, want %d", sp[1].Parent, wantRoot)
	}
	// Roots keep parent 0 across the remap.
	if sp[0].Parent != 0 {
		t.Errorf("root parent remapped to %d", sp[0].Parent)
	}
}

func TestCriticalPathPicksLongestChild(t *testing.T) {
	r := New(Config{})
	root := r.StartSpan("pc3d.search", 0, 0)
	e1 := r.StartSpan("pc3d.variant_eval", 10, root)
	e2 := r.StartSpan("pc3d.variant_eval", 20, root)
	p1 := r.StartSpan("pc3d.probe", 25, e2)
	p2 := r.StartSpan("pc3d.probe", 40, e2)
	r.EndSpan(p1, 30)  // dur 5
	r.EndSpan(p2, 90)  // dur 50 — dominates
	r.EndSpan(e1, 15)  // dur 5
	r.EndSpan(e2, 100) // dur 80 — dominates
	r.EndSpan(root, 120)
	path := r.CriticalPath(root)
	if len(path) != 3 {
		t.Fatalf("path len = %d, want 3 (%+v)", len(path), path)
	}
	if path[0].ID != root || path[1].ID != e2 || path[2].ID != p2 {
		t.Errorf("path = %d→%d→%d, want %d→%d→%d",
			path[0].ID, path[1].ID, path[2].ID, root, e2, p2)
	}
	if r.CriticalPath(SpanID(999)) != nil {
		t.Error("unknown root produced a path")
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := New(Config{})
	root := r.StartSpan("pc3d.search", 100, 0)
	kid := r.StartSpan("core.compile", 110, root)
	r.SpanAttrs(kid, Str("func", `f"n`), Num("job", 2))
	r.EndSpan(kid, 150)
	// root left open on purpose.
	r.Emit(Event{At: 120, Kind: EvDispatch, Core: 2, Func: "hot"})
	out := r.ChromeTraceJSON()
	if !strings.HasPrefix(out, `{"traceEvents":[`) || !strings.HasSuffix(out, "\n]}\n") {
		t.Fatalf("not a trace-event envelope:\n%s", out)
	}
	for _, want := range []string{
		`"name":"pc3d.search","cat":"pc3d","ph":"X","ts":100`,
		`"open":1`, // unfinished root flagged
		`"name":"core.compile","cat":"core","ph":"X","ts":110,"dur":40`,
		`"func":"f\"n"`,
		`"job":2`,
		`"name":"dispatch","cat":"event","ph":"i","s":"p","ts":120`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Both spans render on the root's track (same tree → same tid).
	if !strings.Contains(out, `"tid":1,"args":{"id":1`) || !strings.Contains(out, `"tid":1,"args":{"id":2`) {
		t.Errorf("spans not grouped on the root track:\n%s", out)
	}
}

func TestRegistryCloneIsDeep(t *testing.T) {
	r := New(Config{TraceCap: 4})
	r.Counter("core", "compiles_total", "h").Add(2)
	r.Gauge("pc3d", "nap_intensity", "h").Set(0.5)
	r.Histogram("fleet", "server_qos", "h", []float64{0.5, 1}).Observe(0.7)
	r.Emit(Event{At: 5, Kind: EvNap})
	sp := r.StartSpan("pc3d.search", 1, 0)
	r.SpanAttrs(sp, Str("k", "v"))
	cl := r.Clone()
	before := cl.PrometheusText() + cl.JSONL() + cl.ChromeTraceJSON()
	// Mutate the original in every store; the clone must not move.
	r.Counter("core", "compiles_total", "h").Inc()
	r.Gauge("pc3d", "nap_intensity", "h").Set(0.9)
	r.Histogram("fleet", "server_qos", "h", []float64{0.5, 1}).Observe(0.1)
	r.Emit(Event{At: 9, Kind: EvNap})
	r.SpanAttrs(sp, Str("k2", "v2"))
	r.EndSpan(sp, 77)
	after := cl.PrometheusText() + cl.JSONL() + cl.ChromeTraceJSON()
	if before != after {
		t.Error("mutating the original changed the clone")
	}
	if cl.CounterValue("core", "compiles_total") != 2 {
		t.Errorf("clone counter = %d, want 2", cl.CounterValue("core", "compiles_total"))
	}
	if (*Registry)(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New(Config{})
	h := r.Histogram("x", "q", "", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	for _, v := range []float64{0.5, 1.5, 1.6, 3} {
		h.Observe(v)
	}
	// 4 observations: counts [1,2,1,0]. Median rank 2 lands in (1,2].
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("Quantile(0.5) = %v, want 1.5 (linear interpolation)", got)
	}
	// p=0 clamps into the first bucket, interpolating from lower bound 0.
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Errorf("Quantile(0) = %v, want within first bucket [0,1]", got)
	}
	// p beyond 1 clamps to 1; everything fits under the top finite bound.
	if got := h.Quantile(2); got != 4 {
		t.Errorf("Quantile(2) = %v, want 4", got)
	}
	// An observation above all bounds resolves to the highest finite bound.
	h.Observe(99)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) with +Inf mass = %v, want 4 (clamped)", got)
	}
	// No finite bounds at all: nothing to interpolate against.
	h2 := r.Histogram("x", "q2", "", nil)
	h2.Observe(3)
	if !math.IsNaN(h2.Quantile(0.5)) {
		t.Error("boundless histogram quantile should be NaN")
	}
	var hnil *Histogram
	if !math.IsNaN(hnil.Quantile(0.5)) {
		t.Error("nil histogram quantile should be NaN")
	}
}

// failAfter errors on the Nth write — exercises exporter error paths.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n--
	return len(p), nil
}

func TestExportersPropagateWriteErrors(t *testing.T) {
	r := New(Config{})
	r.Counter("core", "compiles_total", "h").Add(1)
	r.Emit(Event{At: 1, Kind: EvNap})
	r.Emit(Event{At: 2, Kind: EvNap})
	r.StartSpan("x.y", 1, 0)
	// WritePrometheus buffers the whole export into one write.
	if err := r.WritePrometheus(&failAfter{n: 0}); err == nil {
		t.Error("WritePrometheus on a failing writer returned nil error")
	}
	// WriteJSONL writes one line per event; WriteChromeTrace writes the
	// envelope then one chunk per record — both must stop at the first error.
	for i := 0; i < 2; i++ {
		if err := r.WriteJSONL(&failAfter{n: i}); err == nil {
			t.Errorf("WriteJSONL(fail@%d) returned nil error", i)
		}
		if err := r.WriteChromeTrace(&failAfter{n: i}); err == nil {
			t.Errorf("WriteChromeTrace(fail@%d) returned nil error", i)
		}
	}
}

// TestDroppedEventsAcrossMerge: ring overflow counts survive the rollup —
// the aggregate reports how much trace the whole fleet lost.
func TestDroppedEventsAcrossMerge(t *testing.T) {
	mk := func(n int) *Registry {
		r := New(Config{TraceCap: 2})
		for i := 0; i < n; i++ {
			r.Emit(Event{At: uint64(i), Kind: EvNap})
		}
		return r
	}
	agg := New(Config{TraceCap: 64})
	agg.MergeFrom(mk(5), 0) // 3 dropped
	agg.MergeFrom(mk(4), 1) // 2 dropped
	if got := agg.DroppedEvents(); got != 5 {
		t.Errorf("merged DroppedEvents = %d, want 5", got)
	}
	// The retained windows themselves merge in canonical order.
	if got := len(agg.Events()); got != 4 {
		t.Errorf("merged events = %d, want 4", got)
	}
}

// TestCriticalPathOverFleetMergedSpans: satellite coverage — after a fleet
// rollup remaps per-server span IDs to (server+1)<<32|local, CriticalPath
// must still walk the right tree: parent links survive the remap, and the
// longest-child rule picks within one server's tree without leaking into a
// sibling server's spans.
func TestCriticalPathOverFleetMergedSpans(t *testing.T) {
	mkServer := func(rootDur, kidADur, kidBDur uint64) *Registry {
		r := New(Config{})
		root := r.StartSpan("migrate.move", 0, 0)
		a := r.StartSpan("migrate.detach", 1, root)
		r.EndSpan(a, 1+kidADur)
		b := r.StartSpan("migrate.land", 2, root)
		r.EndSpan(b, 2+kidBDur)
		r.EndSpan(root, rootDur)
		return r
	}
	agg := New(Config{})
	agg.MergeFrom(mkServer(100, 5, 50), 0) // server 0: land dominates
	agg.MergeFrom(mkServer(100, 80, 3), 1) // server 1: detach dominates
	root0 := SpanID(1<<32 | 1)
	root1 := SpanID(2<<32 | 1)
	p0 := agg.CriticalPath(root0)
	if len(p0) != 2 || p0[1].Name != "migrate.land" || p0[1].Server != 0 {
		t.Fatalf("server-0 path = %+v, want root→migrate.land on server 0", p0)
	}
	if p0[1].ID != SpanID(1<<32|3) {
		t.Errorf("server-0 leaf ID = %d, want %d", p0[1].ID, SpanID(1<<32|3))
	}
	p1 := agg.CriticalPath(root1)
	if len(p1) != 2 || p1[1].Name != "migrate.detach" || p1[1].Server != 1 {
		t.Fatalf("server-1 path = %+v, want root→migrate.detach on server 1", p1)
	}
	// Merging the same registries twice yields the same paths — remapped IDs
	// are a pure function of (server, local ID).
	agg2 := New(Config{})
	agg2.MergeFrom(mkServer(100, 5, 50), 0)
	agg2.MergeFrom(mkServer(100, 80, 3), 1)
	q0 := agg2.CriticalPath(root0)
	if len(q0) != len(p0) || q0[1].ID != p0[1].ID {
		t.Error("re-merged registry walked a different critical path")
	}
}

// TestOpenSpans: only spans with End == 0 surface, in canonical order, and
// the set survives a fleet merge.
func TestOpenSpans(t *testing.T) {
	r := New(Config{})
	a := r.StartSpan("pc3d.search", 10, 0)
	b := r.StartSpan("core.compile", 20, a)
	r.EndSpan(b, 30)
	r.StartSpan("supervise.recovery", 5, 0) // left open
	open := r.OpenSpans()
	if len(open) != 2 {
		t.Fatalf("open spans = %d, want 2", len(open))
	}
	if open[0].Name != "supervise.recovery" || open[1].Name != "pc3d.search" {
		t.Errorf("open order = %s, %s", open[0].Name, open[1].Name)
	}
	agg := New(Config{})
	agg.MergeFrom(r, 3)
	mopen := agg.OpenSpans()
	if len(mopen) != 2 || mopen[1].Server != 3 {
		t.Errorf("merged open spans = %+v", mopen)
	}
	var nilr *Registry
	if nilr.OpenSpans() != nil {
		t.Error("nil registry produced open spans")
	}
}
