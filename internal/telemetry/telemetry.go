// Package telemetry is the deterministic observability plane shared by the
// protean runtime (core), the PC3D controller, the runtime supervisor and
// the fleet simulator.
//
// The paper's evaluation is entirely about visibility into a live system:
// Figures 5–17 are timelines of compile activity, EVT dispatches, QoS
// samples and nap-state decisions. This package gives every subsystem one
// way to expose that activity — typed counters, gauges and histograms in a
// per-machine Registry, plus a bounded structured event trace — under two
// hard rules:
//
//   - Simulated time only. Instruments carry no timestamps and events are
//     stamped by the emitter with machine cycles, never wall clock, so two
//     runs of the same seed produce byte-identical exports.
//   - Single-writer registries, deterministic rollups. A Registry is owned
//     by one simulated machine (one goroutine); cluster-level views are
//     built after the workers finish by merging per-server registries in
//     server-index order. Under a fixed seed the merged Prometheus text and
//     JSONL trace are bit-identical at any worker count.
//
// Nil is the no-op: a nil *Registry hands out nil instruments whose methods
// do nothing, so instrumented code never branches on "is telemetry on".
// The hot-path cost of a live registry is one pointer increment per event
// (no maps, no locks, no allocation after registration).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prefix namespaces every exported metric.
const Prefix = "protean"

// Config sizes a registry.
type Config struct {
	// TraceCap bounds the event trace: once full, the oldest events are
	// dropped (and counted in protean_telemetry_trace_dropped_total).
	// 0 means the default (8192); negative disables tracing entirely.
	TraceCap int
	// SpanCap bounds the span store: once full, new spans are dropped
	// (newest — dropping old spans would orphan retained children) and
	// counted in protean_telemetry_spans_dropped_total. 0 means the
	// default (8192); negative disables spans entirely.
	SpanCap int
}

// DefaultTraceCap is the event-buffer bound used when Config.TraceCap is 0.
const DefaultTraceCap = 8192

// Counter is a monotonically increasing uint64. Nil-safe.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable float64. Nil-safe.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add increments the value.
func (g *Gauge) Add(v float64) {
	if g != nil {
		g.v += v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed cumulative buckets
// (Prometheus-style "le" upper bounds, +Inf implicit). Nil-safe.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the p-quantile (p clamped to [0,1]) by linear
// interpolation within the bucket containing the target rank — the same
// estimate Prometheus's histogram_quantile computes. Returns NaN for an
// empty (or nil) histogram. A rank landing in the +Inf bucket reports the
// highest finite bound (the estimate cannot exceed observed bounds); a
// histogram with only a +Inf bucket returns NaN.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil || h.n == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.n)
	cum := 0.0
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if c == 0 || cum < rank {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(h.bounds) == 0 {
				return math.NaN()
			}
			return h.bounds[len(h.bounds)-1]
		}
		upper := h.bounds[i]
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		if upper <= lower {
			// First bucket with a non-positive bound: no width to
			// interpolate over.
			return upper
		}
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds one machine's instruments and event trace. Not safe for
// concurrent use: it belongs to the goroutine simulating that machine.
// Merge per-server registries after the workers join (MergeFrom).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string

	trace *traceBuf
	spans *spanBuf
}

// New builds a registry.
func New(cfg Config) *Registry {
	cap := cfg.TraceCap
	if cap == 0 {
		cap = DefaultTraceCap
	}
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
	if cap > 0 {
		r.trace = newTraceBuf(cap)
	}
	scap := cfg.SpanCap
	if scap == 0 {
		scap = DefaultSpanCap
	}
	if scap > 0 {
		r.spans = newSpanBuf(scap)
	}
	return r
}

func metricName(subsystem, name string) string {
	return Prefix + "_" + subsystem + "_" + name
}

// Counter registers (or returns the existing) counter
// protean_<subsystem>_<name>. Returns nil on a nil registry; nil counters
// no-op. help is kept from the first registration.
func (r *Registry) Counter(subsystem, name, help string) *Counter {
	if r == nil {
		return nil
	}
	full := metricName(subsystem, name)
	c := r.counters[full]
	if c == nil {
		c = &Counter{}
		r.counters[full] = c
		r.setHelp(full, help)
	}
	return c
}

// Gauge registers (or returns the existing) gauge protean_<subsystem>_<name>.
func (r *Registry) Gauge(subsystem, name, help string) *Gauge {
	if r == nil {
		return nil
	}
	full := metricName(subsystem, name)
	g := r.gauges[full]
	if g == nil {
		g = &Gauge{}
		r.gauges[full] = g
		r.setHelp(full, help)
	}
	return g
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (sorted ascending; +Inf is implicit). Buckets are
// fixed at first registration.
func (r *Registry) Histogram(subsystem, name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	full := metricName(subsystem, name)
	h := r.hists[full]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[full] = h
		r.setHelp(full, help)
	}
	return h
}

func (r *Registry) setHelp(full, help string) {
	if help != "" {
		r.help[full] = help
	}
}

// CounterValue reads protean_<subsystem>_<name>, 0 when absent or nil.
func (r *Registry) CounterValue(subsystem, name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[metricName(subsystem, name)].Value()
}

// GaugeValue reads protean_<subsystem>_<name>, 0 when absent or nil.
func (r *Registry) GaugeValue(subsystem, name string) float64 {
	if r == nil {
		return 0
	}
	return r.gauges[metricName(subsystem, name)].Value()
}

// Merge folds src's observations into h bucket-wise. Buckets are matched
// by position when the bound sets have equal length; otherwise src's
// observations fold into the +Inf bucket (re-observing at bound midpoints
// would be lossy and non-deterministic). Nil-safe in both positions.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	if len(h.bounds) == len(src.bounds) {
		for i, n := range src.counts {
			h.counts[i] += n
		}
	} else {
		for _, n := range src.counts {
			h.counts[len(h.counts)-1] += n
		}
	}
	h.sum += src.sum
	h.n += src.n
}

// Clone deep-copies the histogram (nil in, nil out).
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	return &Histogram{
		bounds: append([]float64(nil), h.bounds...),
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum, n: h.n,
	}
}

// sortedKeys returns map keys in name order, the canonical iteration order
// for every enumeration and export.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EachCounter calls fn for every registered counter in metric-name order.
// Names are the full exported form (protean_<subsystem>_<name>).
func (r *Registry) EachCounter(fn func(name string, v uint64)) {
	if r == nil {
		return
	}
	for _, k := range sortedKeys(r.counters) {
		fn(k, r.counters[k].v)
	}
}

// EachGauge calls fn for every registered gauge in metric-name order.
func (r *Registry) EachGauge(fn func(name string, v float64)) {
	if r == nil {
		return
	}
	for _, k := range sortedKeys(r.gauges) {
		fn(k, r.gauges[k].v)
	}
}

// EachHistogram calls fn for every registered histogram in metric-name
// order. The histogram is the live instrument — callers must not mutate it
// (Clone first to merge or fold).
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	for _, k := range sortedKeys(r.hists) {
		fn(k, r.hists[k])
	}
}

// MergeFrom folds src into r: counters and gauges add, histograms add
// bucket-wise (buckets are unified by upper bound), and src's events are
// appended with their Server field stamped to server. Call in a fixed
// order (server index) for deterministic rollups; gauges are therefore
// additive in rollups (meaningful for sums like availability; document
// per-metric semantics where that matters).
func (r *Registry) MergeFrom(src *Registry, server int) {
	if r == nil || src == nil {
		return
	}
	for full, c := range src.counters {
		dst := r.counters[full]
		if dst == nil {
			dst = &Counter{}
			r.counters[full] = dst
			r.setHelp(full, src.help[full])
		}
		dst.v += c.v
	}
	for full, g := range src.gauges {
		dst := r.gauges[full]
		if dst == nil {
			dst = &Gauge{}
			r.gauges[full] = dst
			r.setHelp(full, src.help[full])
		}
		dst.v += g.v
	}
	for full, h := range src.hists {
		dst := r.hists[full]
		if dst == nil {
			dst = &Histogram{bounds: append([]float64(nil), h.bounds...), counts: make([]uint64, len(h.counts))}
			r.hists[full] = dst
			r.setHelp(full, src.help[full])
		}
		dst.Merge(h)
	}
	if r.trace != nil && src.trace != nil {
		for _, e := range src.trace.events() {
			e.Server = server
			r.trace.emit(e)
		}
		r.trace.dropped += src.trace.dropped
	}
	r.mergeSpans(src, server)
}

// Clone deep-copies the registry — instruments, event trace and spans.
// The live scrape surface uses it to publish consistent read-only
// snapshots of a simulation's single-writer registry to another
// goroutine; the owner clones, then hands the clone across a mutex.
func (r *Registry) Clone() *Registry {
	if r == nil {
		return nil
	}
	out := &Registry{
		counters: make(map[string]*Counter, len(r.counters)),
		gauges:   make(map[string]*Gauge, len(r.gauges)),
		hists:    make(map[string]*Histogram, len(r.hists)),
		help:     make(map[string]string, len(r.help)),
	}
	for k, c := range r.counters {
		out.counters[k] = &Counter{v: c.v}
	}
	for k, g := range r.gauges {
		out.gauges[k] = &Gauge{v: g.v}
	}
	for k, h := range r.hists {
		out.hists[k] = &Histogram{
			bounds: append([]float64(nil), h.bounds...),
			counts: append([]uint64(nil), h.counts...),
			sum:    h.sum, n: h.n,
		}
	}
	for k, v := range r.help {
		out.help[k] = v
	}
	if r.trace != nil {
		t := newTraceBuf(r.trace.cap)
		t.events_ = append([]Event(nil), r.trace.events_...)
		t.start = r.trace.start
		t.seq = r.trace.seq
		t.dropped = r.trace.dropped
		out.trace = t
	}
	if r.spans != nil {
		s := newSpanBuf(r.spans.cap)
		s.spans = make([]Span, len(r.spans.spans))
		for i, sp := range r.spans.spans {
			sp.Attrs = append([]Attr(nil), sp.Attrs...)
			s.spans[i] = sp
			s.byID[sp.ID] = i
		}
		s.dropped = r.spans.dropped
		s.ambient = r.spans.ambient
		out.spans = s
	}
	return out
}

// fmtFloat renders a float deterministically (shortest round-trip form).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FormatFloat is the canonical deterministic float rendering used in
// exports (shortest round-trip form), for emitters building Detail strings.
func FormatFloat(v float64) string { return fmtFloat(v) }

// WritePrometheus writes the registry in Prometheus text exposition format,
// metrics sorted by name — byte-identical for identical instrument states.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type metric struct {
		full string
		kind int // 0 counter, 1 gauge, 2 histogram
	}
	var all []metric
	for full := range r.counters {
		all = append(all, metric{full, 0})
	}
	for full := range r.gauges {
		all = append(all, metric{full, 1})
	}
	for full := range r.hists {
		all = append(all, metric{full, 2})
	}
	if r.trace != nil {
		// Trace accounting is itself a counter, surfaced uniformly.
		all = append(all, metric{metricName("telemetry", "trace_dropped_total"), 3})
	}
	if r.spans != nil {
		all = append(all, metric{metricName("telemetry", "spans_dropped_total"), 4})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].full < all[j].full })
	var b strings.Builder
	for _, m := range all {
		switch m.kind {
		case 0, 3, 4:
			h := r.help[m.full]
			switch m.kind {
			case 3:
				h = "trace events dropped by the bounded ring (oldest first)"
			case 4:
				h = "spans dropped by the bounded store (newest first)"
			}
			if h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.full, h)
			}
			fmt.Fprintf(&b, "# TYPE %s counter\n", m.full)
			v := uint64(0)
			switch m.kind {
			case 0:
				v = r.counters[m.full].v
			case 3:
				v = r.trace.dropped
			case 4:
				v = r.spans.dropped
			}
			fmt.Fprintf(&b, "%s %d\n", m.full, v)
		case 1:
			if h := r.help[m.full]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.full, h)
			}
			fmt.Fprintf(&b, "# TYPE %s gauge\n", m.full)
			fmt.Fprintf(&b, "%s %s\n", m.full, fmtFloat(r.gauges[m.full].v))
		case 2:
			if h := r.help[m.full]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.full, h)
			}
			fmt.Fprintf(&b, "# TYPE %s histogram\n", m.full)
			hist := r.hists[m.full]
			cum := uint64(0)
			for i, bound := range hist.bounds {
				cum += hist.counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.full, fmtFloat(bound), cum)
			}
			cum += hist.counts[len(hist.counts)-1]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.full, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.full, fmtFloat(hist.sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.full, hist.n)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PrometheusText renders WritePrometheus to a string ("" on nil).
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	r.WritePrometheus(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}
