package contend

import "testing"

func TestBreakerDefaults(t *testing.T) {
	c := BreakerConfig{}.WithDefaults()
	if c.FailureThreshold != 3 || c.CooldownEpochs != 8 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	b := NewBreaker(BreakerConfig{})
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Fatalf("new breaker state %v trips %d, want closed/0", b.State(), b.Trips())
	}
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, CooldownEpochs: 2})
	b.RecordFailure()
	b.RecordFailure()
	// A success in between clears the run: the breaker only counts
	// *consecutive* failures.
	b.RecordSuccess()
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != BreakerClosed {
		t.Fatalf("tripped after an interrupted failure run: %v", b.State())
	}
	b.RecordFailure()
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state %v trips %d after 3 consecutive failures, want open/1", b.State(), b.Trips())
	}
	if got := b.Budget(5); got != 0 {
		t.Fatalf("open breaker admitted budget %d, want 0", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, CooldownEpochs: 2})
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	// Cooldown counts down one epoch at a time.
	b.BeginEpoch()
	if b.State() != BreakerOpen || b.Cooldown() != 1 {
		t.Fatalf("state %v cooldown %d after 1 epoch, want open/1", b.State(), b.Cooldown())
	}
	b.BeginEpoch()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.State())
	}
	// Half-open admits exactly one probe move.
	if got := b.Budget(5); got != 1 {
		t.Fatalf("half-open budget %d, want 1", got)
	}
	// A successful probe re-arms.
	b.RecordSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", b.State())
	}
	if got := b.Budget(5); got != 5 {
		t.Fatalf("closed budget %d, want 5", got)
	}
}

func TestBreakerProbeFailureRetrips(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, CooldownEpochs: 1})
	b.RecordFailure()
	b.BeginEpoch()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	b.RecordFailure()
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state %v trips %d after probe failure, want open/2", b.State(), b.Trips())
	}
}

func TestBreakerTripCorrupt(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, CooldownEpochs: 4})
	b.TripCorrupt()
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state %v trips %d after corrupt trip, want open/1", b.State(), b.Trips())
	}
	// Corrupt epochs while already open re-arm the cooldown without
	// counting new trips.
	b.BeginEpoch()
	b.BeginEpoch()
	if b.Cooldown() != 2 {
		t.Fatalf("cooldown %d after 2 epochs, want 2", b.Cooldown())
	}
	b.TripCorrupt()
	if b.Cooldown() != 4 || b.Trips() != 1 {
		t.Fatalf("cooldown %d trips %d after re-arm, want 4/1", b.Cooldown(), b.Trips())
	}
}

// TestEvictReleasesQuantile is the dead-server regression: a server whose
// windows stay warm after it dies must not keep pinning the fleet
// quantile. Evict clears its window and verdict so the thresholds are
// computed from the survivors only — even if a stale sensor would
// otherwise replay the corpse's last reading forever.
func TestEvictReleasesQuantile(t *testing.T) {
	// Server 3 runs hot at CPI 8 (flagged); server 2 runs warm at CPI 4,
	// below the threshold that server 3's presence in the 0.75-quantile
	// population holds up at enter = 6.25.
	const n, mid, dead = 4, 2, 3
	d := New(n, Config{Window: 2, MinSamples: 2})
	samples := baseline(n, mid, 4.0, 10.0)
	samples[dead] = Sample{CPI: 8.0, MPKI: 10.0, MissRate: 500, Util: 0.5, Valid: true}
	for e := 0; e < 6; e++ {
		d.Observe(samples)
	}
	if !d.States()[dead].Contended {
		t.Fatal("hot server never flagged")
	}
	if d.States()[mid].Contended {
		t.Fatal("warm server flagged while the hot server holds the quantile up")
	}
	enterBefore, _ := d.Thresholds()

	// Server 3 dies. Evict it, then keep observing: its slot now reports
	// invalid samples and must leave the threshold population immediately,
	// even if a stale sensor would replay its last reading forever.
	d.Evict(dead)
	st := d.States()[dead]
	if st.Contended || st.Samples != 0 {
		t.Fatalf("evicted server still contended=%v samples=%d", st.Contended, st.Samples)
	}
	samples[dead] = Sample{}
	var verdicts []bool
	for e := 0; e < 4; e++ {
		d.Evict(dead)
		verdicts = d.Observe(samples)
	}
	enterAfter, _ := d.Thresholds()
	if enterAfter >= enterBefore {
		t.Fatalf("quantile still pinned by dead server: enter %v -> %v", enterBefore, enterAfter)
	}
	if verdicts[dead] {
		t.Fatal("dead server still in the contended set")
	}
	if verdicts[0] || verdicts[1] {
		t.Fatal("baseline survivors flagged against the dead server's stale threshold")
	}
	// With the corpse out of the population the threshold now reflects the
	// survivors, so the warm server's genuine contention surfaces.
	if !verdicts[mid] {
		t.Fatal("warm survivor still hidden behind the dead server's quantile")
	}
}
