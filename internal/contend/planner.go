package contend

import "sort"

// Candidate is a batch instance eligible for eviction: it lives on a
// contended server, and Score estimates how much interference it causes
// (the fleet feeds the contention-aware scheduler's measure here — the
// app's solo LLC misses per second).
type Candidate struct {
	// Server is the contended server hosting the instance.
	Server int
	// App names the batch instance.
	App string
	// Score is the estimated interference (higher = evict first).
	Score float64
}

// Target is a potential destination server.
type Target struct {
	// Server is the server index.
	Server int
	// Load is the server's current offered webservice load in [0,1]
	// (lower = preferred destination).
	Load float64
	// Eligible marks a server that can actually absorb an instance:
	// alive, batch-free, not contended, no arrival already inbound.
	Eligible bool
}

// Move is one planned migration.
type Move struct {
	// From and To are source and destination server indices.
	From, To int
	// App is the migrating batch instance.
	App string
	// Score is the evicted candidate's interference estimate.
	Score float64
}

// tieHash mixes the seed with a server index (splitmix64-style) so
// exact-measure ties order reproducibly but not always toward low indices
// — the same discipline the fleet uses for per-server machine seeds.
func tieHash(seed int64, idx int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(idx+1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// OrderTargets filters the eligible targets and sorts them in the
// planner's preference order: ascending load, ties broken by a seeded hash
// of the server index, then by index. The coordinator uses the same
// ordering to pick fallback destinations when a landing fails, so the
// retry sequence is exactly the plan the planner would have made.
func OrderTargets(seed int64, targets []Target) []Target {
	var ts []Target
	for _, t := range targets {
		if t.Eligible {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].Load != ts[b].Load {
			return ts[a].Load < ts[b].Load
		}
		ha, hb := tieHash(seed, ts[a].Server), tieHash(seed, ts[b].Server)
		if ha != hb {
			return ha < hb
		}
		return ts[a].Server < ts[b].Server
	})
	return ts
}

// PlanMoves ranks candidates by descending interference score and lands
// each on the least-loaded eligible target, one instance per target, up to
// budget moves per call. budget <= 0 plans nothing (migration disabled).
// The plan is a pure function of (seed, candidates, targets): ties in
// score break toward the lower server index; ties in load break by a
// seeded hash of the server index, then index.
func PlanMoves(seed int64, cands []Candidate, targets []Target, budget int) []Move {
	if budget <= 0 || len(cands) == 0 {
		return nil
	}
	cs := append([]Candidate(nil), cands...)
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].Score != cs[b].Score {
			return cs[a].Score > cs[b].Score
		}
		return cs[a].Server < cs[b].Server
	})
	ts := OrderTargets(seed, targets)
	var moves []Move
	for _, c := range cs {
		if len(moves) >= budget || len(ts) == 0 {
			break
		}
		t := ts[0]
		ts = ts[1:]
		moves = append(moves, Move{From: c.Server, To: t.Server, App: c.App, Score: c.Score})
	}
	return moves
}
