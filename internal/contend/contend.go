// Package contend implements online contention detection and migration
// planning for the fleet: the control loop the paper's warehouse-scale
// story needs between "counters exist" and "placement reacts".
//
// The detector ingests one telemetry snapshot per server per decision
// epoch — CPI, MPKI, LLC miss rate and offered utilization, the same
// signals Intel's platform-resource-manager samples from the PMU — into
// per-server rolling windows, and flags servers whose windowed CPI sits
// above a fleet-relative quantile threshold. Two guards keep verdicts
// stable: hysteresis (a server enters the contended set above
// quantile·Enter and leaves only below quantile·Exit, so the band between
// the two thresholds never flips a verdict) and a cooldown that pins every
// fresh verdict for a fixed number of epochs. An MPKI gate keeps
// compute-bound spikes from being misread as cache contention.
//
// Everything is a pure function of (seed, window contents): no wall
// clocks, no randomness outside the seeded tie-break hash, no dependence
// on observation order beyond the epoch sequence itself. Feeding the same
// samples in the same epochs yields bit-identical verdicts at any worker
// count.
package contend

import (
	"fmt"
	"sort"
)

// Sample is one per-server observation over a detector window.
type Sample struct {
	// CPI is active (non-idle, non-slept) cycles per retired instruction
	// of the latency-sensitive tenant — the primary interference signal.
	CPI float64
	// MPKI is shared-LLC misses per kilo-instruction across the server
	// (webservice + batch) — the memory-boundedness gate.
	MPKI float64
	// MissRate is shared-LLC misses per second — bandwidth pressure,
	// exported for observability.
	MissRate float64
	// Util is the server's offered webservice load in [0,1].
	Util float64
	// Valid marks a usable observation. Invalid samples (crashed or
	// zero-progress servers) clear the server's window and verdict.
	Valid bool
}

// Config tunes the detector (consumed by New; zero values take defaults).
type Config struct {
	// Window is the rolling window length in samples (default 4).
	Window int
	// Quantile picks the fleet-relative threshold base: the q-quantile of
	// per-server windowed CPI scores (default 0.75).
	Quantile float64
	// Enter and Exit are the hysteresis band multipliers applied to the
	// quantile base: a server becomes contended at score ≥ base·Enter and
	// stops only at score ≤ base·Exit (defaults 1.25 / 1.05). Exit is
	// clamped below Enter so the band cannot invert.
	Enter float64
	Exit  float64
	// Cooldown pins every fresh verdict for this many epochs (default 2),
	// so even a threshold sitting exactly on a noisy score cannot flap.
	Cooldown int
	// MinSamples is how many valid samples a server needs before it can be
	// flagged (default Window): a cold window says nothing yet.
	MinSamples int
	// MPKIGate requires a candidate's windowed MPKI to reach this multiple
	// of the fleet median before it can *enter* the contended set
	// (default 1.0): high CPI without cache misses is not our contention.
	MPKIGate float64
	// Seed salts deterministic tie-breaks in the planner. The detector
	// itself never draws randomness; the seed is part of the decision
	// tuple only so equal-measure ties resolve reproducibly.
	Seed int64
}

// WithDefaults returns the config with zero fields defaulted and the
// hysteresis band made consistent.
func (c Config) WithDefaults() Config {
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.75
	}
	if c.Enter <= 0 {
		c.Enter = 1.25
	}
	if c.Exit <= 0 {
		c.Exit = 1.05
	}
	if c.Exit > c.Enter {
		c.Exit = c.Enter
	}
	if c.Cooldown < 0 {
		c.Cooldown = 0
	} else if c.Cooldown == 0 {
		c.Cooldown = 2
	}
	if c.MinSamples <= 0 || c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.MPKIGate <= 0 {
		c.MPKIGate = 1.0
	}
	return c
}

// State is one server's detector view after an Observe call.
type State struct {
	// Server is the server index.
	Server int
	// Score is the windowed mean CPI (0 while the window is empty).
	Score float64
	// MPKI, MissRate and Util are windowed means of the other signals.
	MPKI     float64
	MissRate float64
	Util     float64
	// Samples is how many valid samples the window currently holds.
	Samples int
	// Contended is the current verdict.
	Contended bool
	// Cooldown is how many more epochs the verdict is pinned (0 = free).
	Cooldown int
	// FlippedAt is the epoch of the last verdict transition (-1 = never).
	FlippedAt int
}

// window is a fixed-capacity ring of samples.
type window struct {
	buf  []Sample
	head int // next write slot
	n    int // filled entries
}

func (w *window) push(s Sample) {
	w.buf[w.head] = s
	w.head = (w.head + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

func (w *window) reset() { w.head, w.n = 0, 0 }

// means returns the windowed mean of each signal.
func (w *window) means() (cpi, mpki, miss, util float64) {
	if w.n == 0 {
		return 0, 0, 0, 0
	}
	for i := 0; i < w.n; i++ {
		s := w.buf[(w.head-1-i+2*len(w.buf))%len(w.buf)]
		cpi += s.CPI
		mpki += s.MPKI
		miss += s.MissRate
		util += s.Util
	}
	n := float64(w.n)
	return cpi / n, mpki / n, miss / n, util / n
}

// Detector is the streaming contention detector for a fixed-size fleet.
type Detector struct {
	cfg   Config
	win   []window
	st    []State
	epoch int
	// enter/exit are the thresholds computed by the latest Observe
	// (0 until enough servers have warm windows).
	enter, exit float64
	medMPKI     float64
}

// New builds a detector for n servers.
func New(n int, cfg Config) *Detector {
	cfg = cfg.WithDefaults()
	d := &Detector{cfg: cfg, win: make([]window, n), st: make([]State, n)}
	for i := range d.win {
		d.win[i].buf = make([]Sample, cfg.Window)
		d.st[i] = State{Server: i, FlippedAt: -1}
	}
	return d
}

// Config returns the effective configuration.
func (d *Detector) Config() Config { return d.cfg }

// Epoch returns how many Observe calls have been made.
func (d *Detector) Epoch() int { return d.epoch }

// Thresholds returns the enter/exit CPI thresholds from the latest Observe
// (both 0 until enough windows are warm to form a quantile).
func (d *Detector) Thresholds() (enter, exit float64) { return d.enter, d.exit }

// quantileOf returns the q-quantile of vals by linear interpolation over
// the sorted values — deterministic, no randomness.
func quantileOf(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(pos)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Evict clears one server's rolling window and releases its verdict
// immediately: a crashed server carries no signal, and keeping its stale
// window warm would pin the fleet quantile on readings from a machine that
// no longer exists — exactly what a stale sensor replaying old counters
// would otherwise cause. The coordinator calls this for dead servers
// before Observe, so no fault mode (including stale-sample injection) can
// keep a corpse in the threshold population.
func (d *Detector) Evict(server int) {
	if server < 0 || server >= len(d.win) {
		return
	}
	d.win[server].reset()
	st := &d.st[server]
	if st.Contended {
		st.Contended = false
		st.FlippedAt = d.epoch + 1 // released by the next Observe's epoch
	}
	st.Cooldown = 0
	st.Score, st.MPKI, st.MissRate, st.Util, st.Samples = 0, 0, 0, 0, 0
}

// Observe ingests one fleet-wide sample vector (index = server), advances
// every rolling window, recomputes the fleet-relative thresholds, and
// returns the per-server verdicts. len(samples) must equal the detector's
// server count.
func (d *Detector) Observe(samples []Sample) []bool {
	if len(samples) != len(d.win) {
		panic(fmt.Sprintf("contend: Observe got %d samples for %d servers", len(samples), len(d.win)))
	}
	d.epoch++
	for i, s := range samples {
		st := &d.st[i]
		if !s.Valid {
			// A dead or stalled server carries no signal: forget its
			// window and release any verdict immediately.
			d.win[i].reset()
			if st.Contended {
				st.Contended = false
				st.FlippedAt = d.epoch
			}
			st.Cooldown = 0
			st.Score, st.MPKI, st.MissRate, st.Util, st.Samples = 0, 0, 0, 0, 0
			continue
		}
		d.win[i].push(s)
		st.Score, st.MPKI, st.MissRate, st.Util = d.win[i].means()
		st.Samples = d.win[i].n
	}

	// Fleet-relative thresholds over servers with warm windows.
	var scores, mpkis []float64
	for i := range d.st {
		if d.st[i].Samples >= d.cfg.MinSamples {
			scores = append(scores, d.st[i].Score)
			mpkis = append(mpkis, d.st[i].MPKI)
		}
	}
	if len(scores) >= 2 {
		base := quantileOf(scores, d.cfg.Quantile)
		d.enter = base * d.cfg.Enter
		d.exit = base * d.cfg.Exit
		d.medMPKI = quantileOf(mpkis, 0.5)
	} else {
		d.enter, d.exit, d.medMPKI = 0, 0, 0
	}

	out := make([]bool, len(d.st))
	for i := range d.st {
		st := &d.st[i]
		if st.Samples < d.cfg.MinSamples || d.enter == 0 {
			out[i] = st.Contended
			continue
		}
		if st.Cooldown > 0 {
			st.Cooldown--
			out[i] = st.Contended
			continue
		}
		switch {
		case !st.Contended && st.Score >= d.enter && st.MPKI >= d.cfg.MPKIGate*d.medMPKI:
			st.Contended = true
			st.Cooldown = d.cfg.Cooldown
			st.FlippedAt = d.epoch
		case st.Contended && st.Score <= d.exit:
			st.Contended = false
			st.Cooldown = d.cfg.Cooldown
			st.FlippedAt = d.epoch
		}
		out[i] = st.Contended
	}
	return out
}

// States returns a copy of every server's detector state, index order.
func (d *Detector) States() []State {
	return append([]State(nil), d.st...)
}

// Contended counts servers currently flagged.
func (d *Detector) Contended() int {
	n := 0
	for i := range d.st {
		if d.st[i].Contended {
			n++
		}
	}
	return n
}
