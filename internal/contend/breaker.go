package contend

import "fmt"

// BreakerState is the migration circuit breaker's position.
type BreakerState int

// Breaker states. The zero value is closed (migration allowed).
const (
	// BreakerClosed: moves flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe move is
	// allowed, and its outcome decides between re-arming and re-opening.
	BreakerHalfOpen
	// BreakerOpen: migration is suspended for the cooldown.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return fmt.Sprintf("breaker(%d)", int(s))
}

// BreakerConfig tunes the migration circuit breaker (zero values take
// defaults).
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failed moves trip the
	// breaker open (default 3).
	FailureThreshold int
	// CooldownEpochs is how many decision epochs the breaker stays open
	// before probing half-open (default 8).
	CooldownEpochs int
}

// WithDefaults fills defaulted fields.
func (c BreakerConfig) WithDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.CooldownEpochs <= 0 {
		c.CooldownEpochs = 8
	}
	return c
}

// Breaker is the deterministic circuit breaker guarding the migration
// control loop: K consecutive failed moves, or a decision epoch with
// corrupted detector samples, trip it open; while open the planner's
// budget is zero, so the fleet degrades to un-migrated operation instead
// of thrashing against a broken move path. After the cooldown it goes
// half-open and admits a single probe move whose outcome re-arms (closed)
// or re-trips (open) it. A pure state machine over observed move outcomes:
// no clocks, no randomness.
type Breaker struct {
	cfg        BreakerConfig
	state      BreakerState
	consecFail int
	cooldown   int
	trips      int
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.WithDefaults()}
}

// Config returns the effective configuration.
func (b *Breaker) Config() BreakerConfig { return b.cfg }

// State returns the breaker's position.
func (b *Breaker) State() BreakerState { return b.state }

// Trips counts how many times the breaker has tripped open.
func (b *Breaker) Trips() int { return b.trips }

// ConsecutiveFailures is the current closed-state failure run length.
func (b *Breaker) ConsecutiveFailures() int { return b.consecFail }

// Cooldown is how many more epochs the breaker stays open (0 unless open).
func (b *Breaker) Cooldown() int { return b.cooldown }

// BeginEpoch advances the breaker one decision epoch: an open breaker
// counts down its cooldown and goes half-open when it expires. Call once
// per epoch, before Budget.
func (b *Breaker) BeginEpoch() {
	if b.state != BreakerOpen {
		return
	}
	if b.cooldown > 0 {
		b.cooldown--
	}
	if b.cooldown == 0 {
		b.state = BreakerHalfOpen
	}
}

// Budget clamps the planner's per-epoch move budget to what the breaker
// admits: the full budget closed, a single probe half-open, nothing open.
func (b *Breaker) Budget(budget int) int {
	switch b.state {
	case BreakerOpen:
		return 0
	case BreakerHalfOpen:
		if budget > 1 {
			return 1
		}
	}
	return budget
}

// RecordSuccess reports a move that landed. A half-open probe success
// re-arms the breaker; any success clears the consecutive-failure run.
func (b *Breaker) RecordSuccess() {
	b.consecFail = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
	}
}

// RecordFailure reports a failed move (detach fault or rollback). The
// half-open probe failing re-trips immediately; in the closed state,
// FailureThreshold consecutive failures trip the breaker open.
func (b *Breaker) RecordFailure() {
	if b.state == BreakerHalfOpen {
		b.trip()
		return
	}
	b.consecFail++
	if b.state == BreakerClosed && b.consecFail >= b.cfg.FailureThreshold {
		b.trip()
	}
}

// TripCorrupt trips the breaker open from any state: an epoch with
// corrupted detector samples means the decisions themselves can't be
// trusted, so migration suspends without waiting for moves to fail.
func (b *Breaker) TripCorrupt() {
	if b.state == BreakerOpen {
		// Already open: re-arm the full cooldown, but it's not a new trip.
		b.cooldown = b.cfg.CooldownEpochs
		return
	}
	b.trip()
}

func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.cooldown = b.cfg.CooldownEpochs
	b.trips++
	b.consecFail = 0
}
