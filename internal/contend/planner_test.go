package contend

import (
	"reflect"
	"testing"
)

func TestPlanMovesRanksByInterference(t *testing.T) {
	cands := []Candidate{
		{Server: 2, App: "bzip2", Score: 5},
		{Server: 7, App: "milc", Score: 50},
	}
	targets := []Target{
		{Server: 1, Load: 0.4, Eligible: true},
		{Server: 3, Load: 0.1, Eligible: true},
		{Server: 4, Load: 0.9, Eligible: false},
	}
	moves := PlanMoves(1, cands, targets, 4)
	want := []Move{
		{From: 7, To: 3, App: "milc", Score: 50}, // worst aggressor → least-loaded
		{From: 2, To: 1, App: "bzip2", Score: 5},
	}
	if !reflect.DeepEqual(moves, want) {
		t.Fatalf("moves = %+v, want %+v", moves, want)
	}
}

func TestPlanMovesBudgetAndEligibility(t *testing.T) {
	cands := []Candidate{
		{Server: 0, App: "a", Score: 3},
		{Server: 1, App: "b", Score: 2},
		{Server: 2, App: "c", Score: 1},
	}
	targets := []Target{
		{Server: 5, Load: 0.2, Eligible: true},
		{Server: 6, Load: 0.3, Eligible: true},
		{Server: 7, Load: 0.0, Eligible: false}, // tempting but ineligible
	}
	if moves := PlanMoves(1, cands, targets, 1); len(moves) != 1 || moves[0].To != 5 {
		t.Fatalf("budget 1: %+v", moves)
	}
	// Budget above both candidate and target count: one instance per
	// target, never a double booking.
	moves := PlanMoves(1, cands, targets, 10)
	if len(moves) != 2 {
		t.Fatalf("want 2 moves (2 eligible targets), got %+v", moves)
	}
	seen := map[int]bool{}
	for _, mv := range moves {
		if mv.To == 7 {
			t.Fatalf("planned onto ineligible target: %+v", mv)
		}
		if seen[mv.To] {
			t.Fatalf("double-booked target %d: %+v", mv.To, moves)
		}
		seen[mv.To] = true
	}
	if moves := PlanMoves(1, cands, targets, 0); moves != nil {
		t.Fatalf("budget 0 planned %+v", moves)
	}
	if moves := PlanMoves(1, nil, targets, 3); moves != nil {
		t.Fatalf("no candidates planned %+v", moves)
	}
}

func TestPlanMovesTieBreaksDeterministic(t *testing.T) {
	cands := []Candidate{
		{Server: 0, App: "a", Score: 1},
		{Server: 1, App: "b", Score: 1}, // score tie → lower index first
	}
	targets := []Target{
		{Server: 4, Load: 0.5, Eligible: true},
		{Server: 5, Load: 0.5, Eligible: true}, // load tie → seeded hash
	}
	m1 := PlanMoves(7, cands, targets, 2)
	m2 := PlanMoves(7, cands, targets, 2)
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("same seed, different plans: %+v vs %+v", m1, m2)
	}
	if len(m1) != 2 || m1[0].From != 0 || m1[1].From != 1 {
		t.Fatalf("score tie should break toward the lower server index: %+v", m1)
	}
}

// TestPlanMovesChurn drives repeated plan/apply rounds over a synthetic
// assignment — the migration churn the fleet's scheduler sees — and checks
// the invariants that matter: no double booking within or across rounds
// while occupancy is tracked, and the plan settles once contention clears.
func TestPlanMovesChurn(t *testing.T) {
	const n = 12
	hosting := map[int]string{0: "milc", 1: "bzip2", 2: "sphinx3", 3: "libquantum"}
	pressure := map[string]float64{"milc": 40, "libquantum": 30, "sphinx3": 20, "bzip2": 10}
	contended := map[int]bool{0: true, 1: true, 2: true, 3: true}
	totalMoves := 0
	for round := 0; round < 8; round++ {
		var cands []Candidate
		for srv := 0; srv < n; srv++ {
			if contended[srv] && hosting[srv] != "" {
				cands = append(cands, Candidate{Server: srv, App: hosting[srv], Score: pressure[hosting[srv]]})
			}
		}
		var targets []Target
		for srv := 0; srv < n; srv++ {
			targets = append(targets, Target{
				Server:   srv,
				Load:     float64(srv) / n,
				Eligible: !contended[srv] && hosting[srv] == "",
			})
		}
		moves := PlanMoves(3, cands, targets, 2)
		if round >= 2 && len(moves) != 0 {
			t.Fatalf("round %d: contention cleared but still planning %+v", round, moves)
		}
		for _, mv := range moves {
			if hosting[mv.To] != "" {
				t.Fatalf("round %d: landed on occupied server %d", round, mv.To)
			}
			if contended[mv.To] {
				t.Fatalf("round %d: landed on contended server %d", round, mv.To)
			}
			hosting[mv.To] = mv.App
			delete(hosting, mv.From)
			delete(contended, mv.From) // vacated server cools off
			totalMoves++
		}
	}
	if totalMoves != 4 {
		t.Fatalf("churn moved %d instances, want all 4", totalMoves)
	}
	// Highest-pressure aggressors moved first onto the least-loaded servers.
	if hosting[4] != "milc" {
		t.Fatalf("worst aggressor should land on the least-loaded eligible server: %+v", hosting)
	}
}
