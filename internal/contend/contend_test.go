package contend

import (
	"math"
	"reflect"
	"testing"
)

// baseline builds a sample vector of n servers at CPI 1.0 / MPKI 2.0 and
// overrides server tgt with the given CPI and MPKI.
func baseline(n, tgt int, cpi, mpki float64) []Sample {
	s := make([]Sample, n)
	for i := range s {
		s[i] = Sample{CPI: 1.0, MPKI: 2.0, MissRate: 100, Util: 0.5, Valid: true}
	}
	s[tgt] = Sample{CPI: cpi, MPKI: mpki, MissRate: 500, Util: 0.5, Valid: true}
	return s
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Window != 4 || c.Quantile != 0.75 || c.Enter != 1.25 || c.Exit != 1.05 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.Cooldown != 2 || c.MinSamples != 4 || c.MPKIGate != 1.0 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// An inverted band clamps Exit to Enter rather than inverting.
	c = Config{Enter: 1.1, Exit: 1.5}.WithDefaults()
	if c.Exit > c.Enter {
		t.Fatalf("exit %v above enter %v", c.Exit, c.Enter)
	}
}

func TestQuantileOf(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if got := quantileOf(vals, 0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if got := quantileOf(vals, 1.0); got != 4 {
		t.Fatalf("max = %v, want 4", got)
	}
	if got := quantileOf(vals, 0); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := quantileOf(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

func TestDetectorFlagsOutlier(t *testing.T) {
	const n, tgt = 10, 3
	d := New(n, Config{})
	var verdicts []bool
	for e := 0; e < 8; e++ {
		verdicts = d.Observe(baseline(n, tgt, 3.0, 10.0))
	}
	for i, v := range verdicts {
		if (i == tgt) != v {
			t.Fatalf("server %d verdict %v (want contended only for %d)", i, v, tgt)
		}
	}
	st := d.States()[tgt]
	if st.Score < 2.9 || st.Score > 3.1 {
		t.Fatalf("outlier score %v, want ≈3.0", st.Score)
	}
	if enter, exit := d.Thresholds(); !(exit < enter) || enter == 0 {
		t.Fatalf("thresholds enter=%v exit=%v", enter, exit)
	}
}

func TestDetectorNeedsWarmWindow(t *testing.T) {
	const n, tgt = 10, 0
	d := New(n, Config{Window: 4, MinSamples: 4})
	for e := 0; e < 3; e++ {
		v := d.Observe(baseline(n, tgt, 5.0, 10.0))
		if v[tgt] {
			t.Fatalf("flagged at epoch %d, before MinSamples", e+1)
		}
	}
	if v := d.Observe(baseline(n, tgt, 5.0, 10.0)); !v[tgt] {
		t.Fatal("not flagged once the window warmed")
	}
}

func TestMPKIGateBlocksComputeBoundSpikes(t *testing.T) {
	const n, tgt = 10, 2
	d := New(n, Config{})
	// High CPI but below-median MPKI: not memory-bound, never flagged.
	for e := 0; e < 10; e++ {
		if v := d.Observe(baseline(n, tgt, 5.0, 0.1)); v[tgt] {
			t.Fatalf("compute-bound spike flagged at epoch %d", e+1)
		}
	}
}

// TestHysteresisNoFlap drives a server into the contended set, then
// oscillates its CPI strictly inside the enter/exit band: the verdict must
// not change, in either direction.
func TestHysteresisNoFlap(t *testing.T) {
	const n, tgt = 10, 5
	d := New(n, Config{Window: 2, MinSamples: 2, Cooldown: 1})
	// Warm up and enter: baseline servers pin the 0.75-quantile at 1.0, so
	// enter = 1.25 and exit = 1.05.
	for e := 0; e < 6; e++ {
		d.Observe(baseline(n, tgt, 2.0, 10.0))
	}
	if !d.States()[tgt].Contended {
		t.Fatal("target never entered the contended set")
	}
	flips := d.States()[tgt].FlippedAt
	// Oscillate inside the band (window means stay in (1.05, 1.25)).
	for e := 0; e < 20; e++ {
		cpi := 1.10
		if e%2 == 0 {
			cpi = 1.20
		}
		v := d.Observe(baseline(n, tgt, cpi, 10.0))
		if !v[tgt] {
			t.Fatalf("in-band oscillation dropped the verdict at epoch %d", d.Epoch())
		}
	}
	if got := d.States()[tgt].FlippedAt; got != flips {
		t.Fatalf("verdict flipped inside the band (FlippedAt %d → %d)", flips, got)
	}
	// Drop below exit: the verdict releases...
	for e := 0; e < 6; e++ {
		d.Observe(baseline(n, tgt, 0.9, 10.0))
	}
	if d.States()[tgt].Contended {
		t.Fatal("target never exited after dropping below the exit band")
	}
	flips = d.States()[tgt].FlippedAt
	// ...and in-band oscillation must not re-enter either.
	for e := 0; e < 20; e++ {
		cpi := 1.10
		if e%2 == 0 {
			cpi = 1.20
		}
		if v := d.Observe(baseline(n, tgt, cpi, 10.0)); v[tgt] {
			t.Fatalf("in-band oscillation re-entered at epoch %d", d.Epoch())
		}
	}
	if got := d.States()[tgt].FlippedAt; got != flips {
		t.Fatalf("verdict flipped inside the band (FlippedAt %d → %d)", flips, got)
	}
}

// TestCooldownPinsVerdict: right after a flip, even a score past the
// opposite threshold cannot flip the verdict back until the cooldown runs.
func TestCooldownPinsVerdict(t *testing.T) {
	const n, tgt = 10, 1
	d := New(n, Config{Window: 1, MinSamples: 1, Cooldown: 3})
	d.Observe(baseline(n, tgt, 5.0, 10.0)) // enters, cooldown = 3
	if !d.States()[tgt].Contended {
		t.Fatal("target did not enter")
	}
	for e := 0; e < 3; e++ {
		if v := d.Observe(baseline(n, tgt, 0.5, 10.0)); !v[tgt] {
			t.Fatalf("cooldown released after %d epochs, want 3", e+1)
		}
	}
	if v := d.Observe(baseline(n, tgt, 0.5, 10.0)); v[tgt] {
		t.Fatal("verdict still pinned after cooldown expired")
	}
}

func TestInvalidSampleClearsVerdict(t *testing.T) {
	const n, tgt = 10, 4
	d := New(n, Config{Window: 1, MinSamples: 1})
	d.Observe(baseline(n, tgt, 5.0, 10.0))
	if !d.States()[tgt].Contended {
		t.Fatal("target did not enter")
	}
	s := baseline(n, tgt, 5.0, 10.0)
	s[tgt] = Sample{}
	if v := d.Observe(s); v[tgt] {
		t.Fatal("dead server still flagged contended")
	}
	if st := d.States()[tgt]; st.Samples != 0 || st.Score != 0 {
		t.Fatalf("invalid sample did not clear the window: %+v", st)
	}
}

// TestDetectorDeterministic feeds the same sample stream twice and demands
// identical verdict sequences and final states.
func TestDetectorDeterministic(t *testing.T) {
	stream := func(d *Detector) ([][]bool, []State) {
		var vs [][]bool
		for e := 0; e < 30; e++ {
			s := make([]Sample, 8)
			for i := range s {
				// A fixed, aperiodic but deterministic signal.
				cpi := 1.0 + 0.7*math.Sin(float64(e*i+i))
				s[i] = Sample{CPI: math.Abs(cpi), MPKI: 3 + float64(i%3), MissRate: 10, Util: 0.5, Valid: e%11 != i}
			}
			vs = append(vs, d.Observe(s))
		}
		return vs, d.States()
	}
	v1, s1 := stream(New(8, Config{Seed: 42}))
	v2, s2 := stream(New(8, Config{Seed: 42}))
	if !reflect.DeepEqual(v1, v2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("identical streams produced different verdicts or states")
	}
}
