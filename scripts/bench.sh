#!/usr/bin/env bash
# Regenerates BENCH_machine.json, the per-machine performance baseline:
# the default execution engine's simulated instructions per wall-clock
# second (the superblock engine, unless machine.DefaultEngine changes) and
# the fleet simulator's scheduling quanta per wall-clock second. Run it on
# a quiet machine and commit the result so perf regressions in the hot
# loops show up as a diff; scripts/bench_check.sh turns the committed
# number into a CI gate.
#
# Every run also appends one timestamped record (same fields plus "at" and
# "commit") to BENCH_history.jsonl, so the baseline's trajectory survives:
# BENCH_machine.json is always the latest measurement, the history the
# line-per-run log you can plot or bisect against.
#
#   scripts/bench.sh            # default -benchtime 3x
#   BENCHTIME=10x scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_machine.json
hist=BENCH_history.jsonl
benchtime="${BENCHTIME:-3x}"

raw="$(go test -run '^$' -bench 'BenchmarkMachineInstructions$|BenchmarkFleetQuanta$' -benchtime "$benchtime" .)"
echo "$raw"

# Custom metrics print as "<value> <unit>" pairs after ns/op; pick each
# benchmark's value by its unit.
metric() {
  echo "$raw" | awk -v bench="$1" -v unit="$2" '
    $1 ~ "^"bench {for (i = 2; i < NF; i++) if ($(i + 1) == unit) v = $i}
    END {if (v == "") exit 1; print v}'
}
field() {
  echo "$raw" | awk -v key="$1" 'index($0, key": ") == 1 {sub(key": ", ""); print; exit}'
}

insts="$(metric BenchmarkMachineInstructions insts/sec)"
quanta="$(metric BenchmarkFleetQuanta fleet-quanta/sec)"

cat > "$out" <<EOF
{
  "goos": "$(field goos)",
  "goarch": "$(field goarch)",
  "cpu": "$(field cpu)",
  "go": "$(go env GOVERSION)",
  "benchtime": "$benchtime",
  "machine_insts_per_sec": $insts,
  "fleet_quanta_per_sec": $quanta
}
EOF
echo "wrote $out"

# Append the same record, flattened to one line and stamped with the time
# and commit, to the running history.
at="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
dirty=""
git diff --quiet HEAD 2>/dev/null || dirty="-dirty"
printf '{"at": "%s", "commit": "%s", "goos": "%s", "goarch": "%s", "cpu": "%s", "go": "%s", "benchtime": "%s", "machine_insts_per_sec": %s, "fleet_quanta_per_sec": %s}\n' \
  "$at" "$commit$dirty" "$(field goos)" "$(field goarch)" "$(field cpu)" \
  "$(go env GOVERSION)" "$benchtime" "$insts" "$quanta" >> "$hist"
echo "appended $hist ($at, $commit$dirty)"
