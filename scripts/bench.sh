#!/usr/bin/env bash
# Regenerates BENCH_machine.json, the per-machine performance baseline:
# the interpreter's simulated instructions per wall-clock second and the
# fleet simulator's scheduling quanta per wall-clock second. Run it on a
# quiet machine and commit the result so perf regressions in the hot loops
# show up as a diff.
#
#   scripts/bench.sh            # default -benchtime 3x
#   BENCHTIME=10x scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_machine.json
benchtime="${BENCHTIME:-3x}"

raw="$(go test -run '^$' -bench 'BenchmarkMachineInstructions$|BenchmarkFleetQuanta$' -benchtime "$benchtime" .)"
echo "$raw"

# Custom metrics print as "<value> <unit>" pairs after ns/op; pick each
# benchmark's value by its unit.
metric() {
  echo "$raw" | awk -v bench="$1" -v unit="$2" '
    $1 ~ "^"bench {for (i = 2; i < NF; i++) if ($(i + 1) == unit) v = $i}
    END {if (v == "") exit 1; print v}'
}
field() {
  echo "$raw" | awk -v key="$1" 'index($0, key": ") == 1 {sub(key": ", ""); print; exit}'
}

insts="$(metric BenchmarkMachineInstructions insts/sec)"
quanta="$(metric BenchmarkFleetQuanta fleet-quanta/sec)"

cat > "$out" <<EOF
{
  "goos": "$(field goos)",
  "goarch": "$(field goarch)",
  "cpu": "$(field cpu)",
  "go": "$(go env GOVERSION)",
  "benchtime": "$benchtime",
  "machine_insts_per_sec": $insts,
  "fleet_quanta_per_sec": $quanta
}
EOF
echo "wrote $out"
