#!/usr/bin/env bash
# Gates machine-simulation throughput against the committed baseline:
# compares a freshly measured BENCH_machine.json to the BENCH_machine.json
# at HEAD and fails if machine_insts_per_sec regressed by more than 10%.
# CI runs this right after scripts/bench.sh overwrites the working copy;
# locally the same two commands reproduce the gate:
#
#   scripts/bench.sh && scripts/bench_check.sh
#
#   scripts/bench_check.sh [baseline.json] [measured.json]
set -euo pipefail
cd "$(dirname "$0")/.."

measured="${2:-BENCH_machine.json}"

extract() {
  awk -F': ' '/"machine_insts_per_sec"/ {gsub(/[,[:space:]]/, "", $2); print $2}' "$1"
}

if [[ -n "${1:-}" ]]; then
  base="$(extract "$1")"
else
  base="$(git show HEAD:BENCH_machine.json | awk -F': ' '/"machine_insts_per_sec"/ {gsub(/[,[:space:]]/, "", $2); print $2}')"
fi
new="$(extract "$measured")"

if [[ -z "$base" || -z "$new" ]]; then
  echo "bench_check: could not extract machine_insts_per_sec (base='$base', new='$new')" >&2
  exit 2
fi

awk -v base="$base" -v new="$new" 'BEGIN {
  floor = base * 0.9
  printf "machine_insts_per_sec: baseline %d, measured %d (floor %d)\n", base, new, floor
  if (new + 0 < floor) {
    printf "bench_check: FAIL — regressed more than 10%% vs committed baseline\n"
    exit 1
  }
  printf "bench_check: OK\n"
}'
