// Command fleet runs the warehouse-scale fleet simulator: N simulated
// servers, each co-locating a latency-sensitive webservice with a batch
// instance drawn from a datacenter mix under a chosen mitigation system
// and placement policy, driven concurrently and aggregated into cluster
// metrics.
//
// Usage:
//
//	fleet -servers 64 -mix WL1 -webservice web-search -policy least-loaded
//	fleet -servers 16 -mix WL2 -system reqos -diurnal 20 -load-low 0.3 -load-high 0.9
//	fleet -servers 8 -chaos -crash-rate 0.3 -runtime-mttf 5 -qos-dropout 0.2
//	fleet -servers 8 -metrics metrics.prom -trace trace.jsonl
//	fleet -servers 12 -system none -migrate -contend-window 0.5 -contend-q 0.75 -contend-out contend.json
//	fleet -servers 12 -migrate -move-land-fail 0.4 -sample-stale 0.05 -breaker-k 3 -audit-out audit.json
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/contend"
	"repro/internal/datacenter"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/machine"
)

func main() {
	var (
		servers    = flag.Int("servers", 16, "fleet size")
		instances  = flag.Int("instances", 0, "batch instances to place (0 = one per server)")
		webservice = flag.String("webservice", "web-search", "latency-sensitive app on every server")
		mixName    = flag.String("mix", "WL1", "batch mix: WL1|WL2|WL3")
		policyName = flag.String("policy", "least-loaded", "placement policy: round-robin|least-loaded|contention-aware")
		systemName = flag.String("system", "pc3d", "mitigation system: none|pc3d|reqos")
		target     = flag.Float64("target", 0.95, "QoS target")
		seed       = flag.Int64("seed", 1, "fleet seed (fixed seed = bit-identical metrics at any -workers)")
		engine     = flag.String("engine", machine.DefaultEngine, "execution engine: superblock|interp (bit-identical)")
		workers    = flag.Int("workers", 0, "max concurrent server simulations (0 = NumCPU)")
		solo       = flag.Float64("solo", 1, "solo calibration seconds per app")
		settle     = flag.Float64("settle", 5.5, "settle seconds before measurement")
		measure    = flag.Float64("measure", 1, "steady-state measurement seconds")
		diurnal    = flag.Float64("diurnal", 0, "diurnal load period in seconds (0 = saturated webservices)")
		loadLow    = flag.Float64("load-low", 0.25, "diurnal trough load fraction")
		loadHigh   = flag.Float64("load-high", 0.95, "diurnal peak load fraction")
		spread     = flag.Float64("phase-spread", 0, "total diurnal phase offset fanned across the fleet, seconds")
		maxSites   = flag.Int("max-sites", 0, "cap PC3D's search (0 = full search)")

		chaos       = flag.Bool("chaos", false, "enable fault injection (a moderate preset unless rates are given)")
		faultSeed   = flag.Int64("fault-seed", 0, "fault-schedule seed (0 = the fleet seed)")
		crashRate   = flag.Float64("crash-rate", 0, "per-server whole-machine crash probability")
		restart     = flag.Float64("restart-delay", 0.5, "scheduler re-placement delay after a server crash, seconds")
		compileFail = flag.Float64("compile-fail", 0, "per-compile-job failure probability in the protean runtime")
		runtimeMTTF = flag.Float64("runtime-mttf", 0, "protean runtime mean time to failure, seconds (0 = never)")
		qosDropout  = flag.Float64("qos-dropout", 0, "probability each QoS sensor window goes dark")
		dropoutSecs = flag.Float64("dropout-seconds", 0.2, "QoS sensor dropout window length, seconds")

		detachFail    = flag.Float64("move-detach-fail", 0, "per-move probability a migration fails before the source detaches")
		landFail      = flag.Float64("move-land-fail", 0, "per-attempt probability a migration landing fails")
		moveStall     = flag.Float64("move-stall-max", 0, "max extra blackout stall per move, seconds (uniform)")
		sampleCorrupt = flag.Float64("sample-corrupt", 0, "per-(server,epoch) probability a detector sample arrives corrupted")
		sampleStale   = flag.Float64("sample-stale", 0, "per-(server,epoch) probability a detector sample replays stale")

		migrate       = flag.Bool("migrate", false, "enable contention-detection → live batch migration")
		contendWindow = flag.Float64("contend-window", 0.5, "migration decision-epoch length, seconds")
		contendQ      = flag.Float64("contend-q", 0.75, "detector quantile for the contention threshold")
		migrateBudget = flag.Int("migrate-budget", 1, "max migrations per decision epoch")
		blackout      = flag.Float64("blackout", 0.25, "migration blackout (modeled cost), seconds")
		landAttempts  = flag.Int("migrate-retries", 0, "max landing attempts per move, planned destination included (0 = default 3)")
		retryBackoff  = flag.Float64("retry-backoff", 0, "extra blackout before each retry landing, seconds (0 = blackout/2)")
		rollbackPen   = flag.Float64("rollback-penalty", 0, "extra blackout charged when a move rolls back, seconds (0 = blackout)")
		breakerK      = flag.Int("breaker-k", 0, "consecutive failed moves that trip the migration breaker (0 = default 3)")
		breakerCool   = flag.Int("breaker-cooldown", 0, "epochs the tripped breaker stays open before a half-open probe (0 = default 8)")
		contendPath   = flag.String("contend-out", "", "write the final contention/migration status as JSON to this file (- = stdout)")
		auditPath     = flag.String("audit-out", "", "write the conservation auditor's report as JSON to this file (- = stdout)")

		sloOn       = flag.Bool("slo", false, "enable the SLO engine: multi-window burn-rate alerts over a deterministic time-series store")
		sloWindow   = flag.Float64("slo-window", 0, "SLO evaluation-epoch length, seconds (0 = 0.5, or the -contend-window with -migrate)")
		sloBoost    = flag.Int("slo-boost", 0, "extra per-epoch migration budget while the QoS burn alert fires (needs -migrate)")
		alertsPath  = flag.String("alerts-out", "", "write the alert log (every SLO lifecycle transition) as JSON to this file (- = stdout)")
		tsdbPath    = flag.String("tsdb-out", "", "write the full time-series store as JSON to this file (- = stdout)")
		postmortDir = flag.String("postmortem-dir", "", "write each frozen postmortem bundle as JSON into this directory")

		metricsPath = flag.String("metrics", "", "write the cluster telemetry rollup in Prometheus text format to this file (- = stdout)")
		tracePath   = flag.String("trace", "", "write the merged event trace as JSONL to this file (- = stdout)")
		spansPath   = flag.String("spans", "", "write the merged spans + events as Chrome trace-event JSON (Perfetto-loadable) to this file (- = stdout)")
		profilePath = flag.String("profile", "", "write the fleet deep profile as folded stacks (flamegraph/speedscope input) to this file (- = stdout)")
		serveAddr   = flag.String("serve", "", "serve /metrics, /trace, /profile, /slo, /alerts, /postmortem, /healthz (plus /debug/pprof) on this address during and after the run, e.g. :8080")
		scrapeevery = flag.Int("scrape-interval", 0, "live-publisher snapshot deposit interval in scheduler quanta for -serve (0 = default 64)")
	)
	flag.Parse()

	mix, ok := datacenter.MixByName(*mixName)
	if !ok {
		fail("unknown mix %q (try WL1, WL2, WL3)", *mixName)
	}
	policy, err := fleet.PolicyByName(*policyName)
	if err != nil {
		failErr(err)
	}
	system, err := fleet.SystemByName(*systemName)
	if err != nil {
		failErr(err)
	}
	var trace loadgen.Trace
	if *diurnal > 0 {
		trace = loadgen.Diurnal{Period: *diurnal, Low: *loadLow, High: *loadHigh}
	}

	var ch *faults.Chaos
	migrationFaults := *detachFail > 0 || *landFail > 0 || *moveStall > 0 ||
		*sampleCorrupt > 0 || *sampleStale > 0
	if *chaos || *crashRate > 0 || *compileFail > 0 || *runtimeMTTF > 0 || *qosDropout > 0 || migrationFaults {
		ch = &faults.Chaos{
			Seed:                    *faultSeed,
			ServerCrashProb:         *crashRate,
			RestartDelaySeconds:     *restart,
			CompileFailProb:         *compileFail,
			RuntimeCrashMTTFSeconds: *runtimeMTTF,
			QoSDropoutProb:          *qosDropout,
			QoSDropoutSeconds:       *dropoutSecs,
			MoveDetachFailProb:      *detachFail,
			MoveLandFailProb:        *landFail,
			MoveStallMaxSeconds:     *moveStall,
			SampleCorruptProb:       *sampleCorrupt,
			SampleStaleProb:         *sampleStale,
		}
		if *chaos && *crashRate == 0 && *compileFail == 0 && *runtimeMTTF == 0 && *qosDropout == 0 && !migrationFaults {
			// Bare -chaos: a moderate every-fault-class preset.
			ch.ServerCrashProb = 0.3
			ch.CompileFailProb = 0.15
			ch.RuntimeCrashMTTFSeconds = 10
			ch.QoSDropoutProb = 0.15
		}
	}

	var mg *fleet.MigrationConfig
	if *migrate {
		mg = &fleet.MigrationConfig{
			WindowSeconds:          *contendWindow,
			BlackoutSeconds:        *blackout,
			BudgetPerEpoch:         *migrateBudget,
			MaxLandAttempts:        *landAttempts,
			RetryBackoffSeconds:    *retryBackoff,
			RollbackPenaltySeconds: *rollbackPen,
			Detector:               contend.Config{Quantile: *contendQ},
			Breaker: contend.BreakerConfig{
				FailureThreshold: *breakerK,
				CooldownEpochs:   *breakerCool,
			},
		}
	}

	var sc *fleet.SLOConfig
	if *sloOn || *alertsPath != "" || *tsdbPath != "" || *postmortDir != "" {
		sc = &fleet.SLOConfig{
			WindowSeconds: *sloWindow,
			BoostBudget:   *sloBoost,
		}
	}

	f, err := fleet.New(fleet.Config{
		Servers:              *servers,
		Instances:            *instances,
		Webservice:           *webservice,
		Mix:                  mix,
		System:               system,
		Target:               *target,
		Policy:               policy,
		Seed:                 *seed,
		Engine:               *engine,
		Workers:              *workers,
		SoloSeconds:          *solo,
		SettleSeconds:        *settle,
		MeasureSeconds:       *measure,
		Trace:                trace,
		PhaseSpreadSeconds:   *spread,
		MaxSites:             *maxSites,
		Chaos:                ch,
		Migration:            mg,
		SLO:                  sc,
		ScrapeIntervalQuanta: *scrapeevery,
	})
	if err != nil {
		failErr(err)
	}

	cfg := f.Config()
	fmt.Printf("fleet: %d servers, %d %s instances, webservice %s, system %s, policy %s, %d workers\n",
		cfg.Servers, cfg.Instances, mix.Name, cfg.Webservice, cfg.System, cfg.Policy.Name(), cfg.Workers)
	if *serveAddr != "" {
		// The handler must exist before Run so servers publish live
		// snapshots; scraping works throughout the run and afterwards.
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			failErr(err)
		}
		fmt.Printf("serving /metrics /trace /profile /contend /audit /slo /alerts /postmortem /healthz on %s\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, f.Handler()); err != nil {
				fail("serve: %v", err)
			}
		}()
	}
	start := time.Now()
	m, err := f.Run()
	if err != nil {
		failErr(err)
	}

	fmt.Printf("\n%-22s %8s %8s %8s %8s\n", "", "mean", "p50", "p95", "min")
	fmt.Printf("%-22s %8.3f %8.3f %8.3f %8.3f\n", "batch utilization", m.Utilization.Mean, m.Utilization.P50, m.Utilization.P95, m.Utilization.Min)
	fmt.Printf("%-22s %8.3f %8.3f %8.3f %8.3f\n", "webservice QoS", m.QoS.Mean, m.QoS.P50, m.QoS.P95, m.QoS.Min)
	fmt.Printf("\nQoS violations:          %d/%d servers below %.0f%% target\n", m.QoSViolations, m.Servers, cfg.Target*100)
	fmt.Printf("batch throughput:        %.2f dedicated-server units\n", m.BatchUnits)
	fmt.Printf("extra servers avoided:   %d (no-co-location equivalent)\n", m.ExtraServersEquivalent)
	fmt.Printf("energy efficiency:       %.2fx vs no-co-location fleet\n", m.EnergyEfficiencyRatio)
	if ch != nil {
		fmt.Printf("\nfault injection:\n")
		fmt.Printf("  availability:          %.3f mean up-fraction of the measurement window\n", m.Availability)
		fmt.Printf("  server crashes:        %d (%d instances re-placed, %d unplaced)\n",
			m.Crashes, m.Replacements, m.UnplacedInstances)
		fmt.Printf("  runtime crashes:       %d (%d supervised restarts)\n", m.RuntimeCrashes, m.RuntimeRestarts)
		fmt.Printf("  compile failures:      %d\n", m.CompileFailures)
		fmt.Printf("  sensor dropouts:       %d\n", m.SensorDropouts)
		fmt.Printf("  degraded survivors:    QoS %.3f/%.3f/%.3f util %.3f/%.3f/%.3f (mean/p50/min)\n",
			m.DegradedQoS.Mean, m.DegradedQoS.P50, m.DegradedQoS.Min,
			m.DegradedUtilization.Mean, m.DegradedUtilization.P50, m.DegradedUtilization.Min)
	}

	if mg != nil {
		fmt.Printf("\nlive migration:\n")
		fmt.Printf("  migrations:            %d (%d batch quanta lost to blackouts)\n", m.Migrations, m.MigrationQuantaLost)
		fmt.Printf("  contended servers:     %d at the last decision epoch\n", m.ContendedServers)
		fmt.Printf("  QoS tail:              p95 %.3f  p99 %.3f (levels 95%%/99%% of servers meet)\n", m.QoS.P05, m.QoS.P01)
		fmt.Printf("  failed moves:          %d (%d rollbacks, %d retries)\n", m.MovesFailed, m.MoveRollbacks, m.MoveRetries)
		fmt.Printf("  breaker trips:         %d\n", m.BreakerTrips)
		fmt.Printf("  sensor faults:         %d corrupt, %d stale detector samples\n", m.CorruptSamples, m.StaleSamples)
		fmt.Printf("  audit violations:      %d (conservation, occupancy, monotonicity, accounting)\n", m.AuditViolations)
	}

	if sc != nil {
		fmt.Printf("\nSLO engine:\n")
		fmt.Printf("  alerts:                %d fired, %d resolved\n", m.AlertsFired, m.AlertsResolved)
		fmt.Printf("  postmortems:           %d bundles frozen\n", m.Postmortems)
	}

	fmt.Printf("\nper-app mean utilization:\n")
	for _, app := range mix.Apps {
		if u, ok := m.PerApp[app]; ok {
			fmt.Printf("  %-20s %.3f\n", app, u)
		}
	}
	fmt.Printf("\n[%d servers simulated in %.1fs]\n", m.Servers, time.Since(start).Seconds())

	tel := f.Telemetry()
	if *metricsPath != "" {
		if err := writeExport(*metricsPath, tel.WritePrometheus); err != nil {
			failErr(err)
		}
	}
	if *tracePath != "" {
		if err := writeExport(*tracePath, tel.WriteJSONL); err != nil {
			failErr(err)
		}
	}
	if *spansPath != "" {
		if err := writeExport(*spansPath, tel.WriteChromeTrace); err != nil {
			failErr(err)
		}
	}
	if *profilePath != "" {
		if err := writeExport(*profilePath, f.WriteProfile); err != nil {
			failErr(err)
		}
	}
	if *contendPath != "" {
		err := writeExport(*contendPath, func(w io.Writer) error {
			st := f.ContendStatus()
			if st == nil {
				_, err := io.WriteString(w, "{\"epoch\": 0}\n")
				return err
			}
			return st.WriteJSON(w)
		})
		if err != nil {
			failErr(err)
		}
	}
	if *auditPath != "" {
		err := writeExport(*auditPath, func(w io.Writer) error {
			rep := f.AuditReport()
			if rep == nil {
				_, err := io.WriteString(w, "{\"epochs_checked\": 0}\n")
				return err
			}
			return rep.WriteJSON(w)
		})
		if err != nil {
			failErr(err)
		}
	}
	if *alertsPath != "" {
		err := writeExport(*alertsPath, func(w io.Writer) error {
			if s := f.AlertLogJSON(); s != "" {
				_, err := io.WriteString(w, s)
				return err
			}
			_, err := io.WriteString(w, "{\"fired\": 0}\n")
			return err
		})
		if err != nil {
			failErr(err)
		}
	}
	if *tsdbPath != "" {
		if err := writeExport(*tsdbPath, f.WriteTSDB); err != nil {
			failErr(err)
		}
	}
	if *postmortDir != "" {
		if err := os.MkdirAll(*postmortDir, 0o755); err != nil {
			failErr(err)
		}
		for _, b := range f.Postmortems() {
			name := fmt.Sprintf("postmortem_%03d_%s.json", b.Seq, strings.ReplaceAll(b.Reason, ":", "_"))
			path := filepath.Join(*postmortDir, name)
			if err := os.WriteFile(path, []byte(b.JSON()), 0o644); err != nil {
				failErr(err)
			}
		}
		fmt.Printf("wrote %d postmortem bundles to %s\n", len(f.Postmortems()), *postmortDir)
	}
	if *serveAddr != "" {
		fmt.Println("run complete; still serving (ctrl-c to exit)")
		select {}
	}
}

// writeExport writes a telemetry export to path, with "-" meaning stdout.
func writeExport(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleet: "+format+"\n", args...)
	os.Exit(2)
}

// failErr prints an error that already carries the package prefix.
func failErr(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
