// Command fleet runs the warehouse-scale fleet simulator: N simulated
// servers, each co-locating a latency-sensitive webservice with a batch
// instance drawn from a datacenter mix under a chosen mitigation system
// and placement policy, driven concurrently and aggregated into cluster
// metrics.
//
// Usage:
//
//	fleet -servers 64 -mix WL1 -webservice web-search -policy least-loaded
//	fleet -servers 16 -mix WL2 -system reqos -diurnal 20 -load-low 0.3 -load-high 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/datacenter"
	"repro/internal/fleet"
	"repro/internal/loadgen"
)

func main() {
	var (
		servers    = flag.Int("servers", 16, "fleet size")
		instances  = flag.Int("instances", 0, "batch instances to place (0 = one per server)")
		webservice = flag.String("webservice", "web-search", "latency-sensitive app on every server")
		mixName    = flag.String("mix", "WL1", "batch mix: WL1|WL2|WL3")
		policyName = flag.String("policy", "least-loaded", "placement policy: round-robin|least-loaded|contention-aware")
		systemName = flag.String("system", "pc3d", "mitigation system: none|pc3d|reqos")
		target     = flag.Float64("target", 0.95, "QoS target")
		seed       = flag.Int64("seed", 1, "fleet seed (fixed seed = bit-identical metrics at any -workers)")
		workers    = flag.Int("workers", 0, "max concurrent server simulations (0 = NumCPU)")
		solo       = flag.Float64("solo", 1, "solo calibration seconds per app")
		settle     = flag.Float64("settle", 5.5, "settle seconds before measurement")
		measure    = flag.Float64("measure", 1, "steady-state measurement seconds")
		diurnal    = flag.Float64("diurnal", 0, "diurnal load period in seconds (0 = saturated webservices)")
		loadLow    = flag.Float64("load-low", 0.25, "diurnal trough load fraction")
		loadHigh   = flag.Float64("load-high", 0.95, "diurnal peak load fraction")
		spread     = flag.Float64("phase-spread", 0, "total diurnal phase offset fanned across the fleet, seconds")
		maxSites   = flag.Int("max-sites", 0, "cap PC3D's search (0 = full search)")
	)
	flag.Parse()

	mix, ok := datacenter.MixByName(*mixName)
	if !ok {
		fail("unknown mix %q (try WL1, WL2, WL3)", *mixName)
	}
	policy, err := fleet.PolicyByName(*policyName)
	if err != nil {
		failErr(err)
	}
	system, err := fleet.SystemByName(*systemName)
	if err != nil {
		failErr(err)
	}
	var trace loadgen.Trace
	if *diurnal > 0 {
		trace = loadgen.Diurnal{Period: *diurnal, Low: *loadLow, High: *loadHigh}
	}

	f, err := fleet.New(fleet.Config{
		Servers:            *servers,
		Instances:          *instances,
		Webservice:         *webservice,
		Mix:                mix,
		System:             system,
		Target:             *target,
		Policy:             policy,
		Seed:               *seed,
		Workers:            *workers,
		SoloSeconds:        *solo,
		SettleSeconds:      *settle,
		MeasureSeconds:     *measure,
		Trace:              trace,
		PhaseSpreadSeconds: *spread,
		MaxSites:           *maxSites,
	})
	if err != nil {
		failErr(err)
	}

	cfg := f.Config()
	fmt.Printf("fleet: %d servers, %d %s instances, webservice %s, system %s, policy %s, %d workers\n",
		cfg.Servers, cfg.Instances, mix.Name, cfg.Webservice, cfg.System, cfg.Policy.Name(), cfg.Workers)
	start := time.Now()
	m, err := f.Run()
	if err != nil {
		failErr(err)
	}

	fmt.Printf("\n%-22s %8s %8s %8s %8s\n", "", "mean", "p50", "p95", "min")
	fmt.Printf("%-22s %8.3f %8.3f %8.3f %8.3f\n", "batch utilization", m.Utilization.Mean, m.Utilization.P50, m.Utilization.P95, m.Utilization.Min)
	fmt.Printf("%-22s %8.3f %8.3f %8.3f %8.3f\n", "webservice QoS", m.QoS.Mean, m.QoS.P50, m.QoS.P95, m.QoS.Min)
	fmt.Printf("\nQoS violations:          %d/%d servers below %.0f%% target\n", m.QoSViolations, m.Servers, cfg.Target*100)
	fmt.Printf("batch throughput:        %.2f dedicated-server units\n", m.BatchUnits)
	fmt.Printf("extra servers avoided:   %d (no-co-location equivalent)\n", m.ExtraServersEquivalent)
	fmt.Printf("energy efficiency:       %.2fx vs no-co-location fleet\n", m.EnergyEfficiencyRatio)
	fmt.Printf("\nper-app mean utilization:\n")
	for _, app := range mix.Apps {
		if u, ok := m.PerApp[app]; ok {
			fmt.Printf("  %-20s %.3f\n", app, u)
		}
	}
	fmt.Printf("\n[%d servers simulated in %.1fs]\n", m.Servers, time.Since(start).Seconds())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleet: "+format+"\n", args...)
	os.Exit(2)
}

// failErr prints an error that already carries the package prefix.
func failErr(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
