// Command pcvet runs the semantic linter over protean-code programs: the
// dataflow-based IR diagnostics (internal/ir/dataflow.Lint) plus the
// ISA-level checks on lowered code (internal/isa.LintProgram).
//
// It vets three kinds of target:
//
//	pcvet -app libquantum          # a catalog app (IR + lowered code)
//	pcvet -all                     # every catalog app
//	pcvet -input prog.ir           # a textual IR module
//	pcvet -bin prog.pcb            # a compiled binary (code + embedded IR)
//
// Findings print one per line in the form
//
//	<severity>[<rule>] <location>: <message>
//
// followed by a per-target count summary. With -format json each finding
// (and the per-target summary) is instead one JSON object per line, for
// machine consumers. The exit status is 1 when any target has an
// error-severity finding (or fails to parse/compile at all), 0 otherwise,
// 2 for usage errors — so CI can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/ir"
	"repro/internal/ir/dataflow"
	"repro/internal/ir/irtext"
	"repro/internal/isa"
	"repro/internal/pcc"
	"repro/internal/progbin"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and argv, so tests can drive the
// whole CLI in-process. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app    = fs.String("app", "", "vet a workload catalog app by name")
		all    = fs.Bool("all", false, "vet every catalog app")
		input  = fs.String("input", "", "vet a textual IR module file")
		bin    = fs.String("bin", "", "vet a compiled .pcb binary")
		report = fs.String("report", "", "also append findings to this file (for CI artifacts)")
		max    = fs.Int("max", 40, "findings printed per target before truncating")
		list   = fs.Bool("list", false, "list catalog app names and exit")
		format = fs.String("format", "text", "output format: text|json (one JSON object per line)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pcvet [-app name | -all | -input file.ir | -bin file.pcb]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		var names []string
		for _, s := range workload.Catalog() {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	targets := 0
	for _, set := range []bool{*app != "", *all, *input != "", *bin != ""} {
		if set {
			targets++
		}
	}
	if targets != 1 || fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "pcvet: unknown -format %q (text|json)\n", *format)
		return 2
	}

	out := stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(stderr, "pcvet: %v\n", err)
			return 1
		}
		defer f.Close()
		out = io.MultiWriter(stdout, f)
	}

	v := &vetter{out: out, max: *max, jsonOut: *format == "json"}
	switch {
	case *all:
		var names []string
		for _, s := range workload.Catalog() {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		for _, name := range names {
			spec, _ := workload.ByName(name)
			v.vetModule(name, spec.Module())
		}
	case *app != "":
		spec, ok := workload.ByName(*app)
		if !ok {
			fmt.Fprintf(stderr, "pcvet: unknown app %q (try -list)\n", *app)
			return 1
		}
		v.vetModule(*app, spec.Module())
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(stderr, "pcvet: %v\n", err)
			return 1
		}
		m, err := irtext.Parse(f)
		f.Close()
		if err != nil {
			// A module that fails structural verification is the most
			// severe finding there is; report it in diagnostic form.
			if v.jsonOut {
				v.report(*input, ir.Diags{{Sev: ir.SevError, Rule: "verify", Pos: ir.Pos{Instr: ir.NoInstr}, Msg: err.Error()}})
			} else {
				fmt.Fprintf(out, "%s: error[verify]: %v\n", *input, err)
				fmt.Fprintf(out, "%s: 1 error, 0 warnings, 0 infos\n", *input)
				v.errors++
			}
		} else {
			v.vetModule(*input, m)
		}
	case *bin != "":
		f, err := os.Open(*bin)
		if err != nil {
			fmt.Fprintf(stderr, "pcvet: %v\n", err)
			return 1
		}
		b, err := progbin.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "pcvet: %v\n", err)
			return 1
		}
		v.vetBinary(*bin, b)
	}

	if v.errors > 0 {
		fmt.Fprintf(stderr, "pcvet: %d error finding(s)\n", v.errors)
		return 1
	}
	return 0
}

// vetter accumulates findings across targets and formats the report.
type vetter struct {
	out     io.Writer
	max     int
	jsonOut bool
	errors  int // error-severity findings across every target
}

// jsonPos mirrors ir.Pos with stable lower-case keys for machine
// consumers; coarser-scoped findings leave the finer fields zeroed.
type jsonPos struct {
	Module string `json:"module,omitempty"`
	Func   string `json:"func,omitempty"`
	Block  string `json:"block,omitempty"`
	Instr  int    `json:"instr"`
	Term   bool   `json:"term,omitempty"`
}

// jsonFinding is one finding in -format json output, one object per line.
type jsonFinding struct {
	Target   string  `json:"target"`
	Severity string  `json:"severity"`
	Rule     string  `json:"rule"`
	Pos      jsonPos `json:"pos"`
	Msg      string  `json:"msg"`
}

// jsonSummary closes each target's findings in -format json output.
type jsonSummary struct {
	Target    string `json:"target"`
	Summary   bool   `json:"summary"`
	Errors    int    `json:"errors"`
	Warnings  int    `json:"warnings"`
	Infos     int    `json:"infos"`
	Truncated int    `json:"truncated,omitempty"`
}

// vetModule lints a finalized module and, when it compiles cleanly, the
// lowered protean code too — a pcvet run covers both layers the way the
// paper's toolchain does (static IR then runtime-visible ISA).
func (v *vetter) vetModule(name string, m *ir.Module) {
	diags := dataflow.Lint(m)
	bin, err := pcc.Compile(m, pcc.Options{Protean: true, NoVet: true})
	if err != nil {
		diags = append(diags, ir.Diag{
			Sev:  ir.SevError,
			Rule: "lower",
			Pos:  ir.Pos{Module: m.Name},
			Msg:  err.Error(),
		})
	} else {
		diags = append(diags, isa.LintProgram(bin.Program)...)
	}
	v.report(name, diags)
}

// vetBinary lints a compiled binary's code, and its embedded IR when the
// binary is protean.
func (v *vetter) vetBinary(name string, b *progbin.Binary) {
	diags := isa.LintProgram(b.Program)
	if len(b.IRBlob) > 0 {
		m, err := ir.DecodeBytes(b.IRBlob)
		if err != nil {
			diags = append(diags, ir.Diag{
				Sev:  ir.SevError,
				Rule: "embedded-ir",
				Msg:  fmt.Sprintf("cannot decode embedded IR: %v", err),
			})
		} else {
			diags = append(diags, dataflow.Lint(m)...)
		}
	}
	v.report(name, diags)
}

// report prints one target's findings (capped at v.max) and its summary
// line, and tallies error-severity findings.
func (v *vetter) report(name string, diags ir.Diags) {
	if v.jsonOut {
		v.reportJSON(name, diags)
		return
	}
	for i, d := range diags {
		if v.max > 0 && i == v.max {
			fmt.Fprintf(v.out, "%s: ... and %d more finding(s)\n", name, len(diags)-v.max)
			break
		}
		fmt.Fprintf(v.out, "%s: %s\n", name, d)
	}
	fmt.Fprintf(v.out, "%s: %d errors, %d warnings, %d infos\n",
		name, diags.Errors(), diags.Warnings(), diags.Infos())
	v.errors += diags.Errors()
}

// reportJSON is report in machine form: one finding object per line, then
// a summary object carrying the full (untruncated) severity counts.
func (v *vetter) reportJSON(name string, diags ir.Diags) {
	enc := json.NewEncoder(v.out)
	truncated := 0
	for i, d := range diags {
		if v.max > 0 && i == v.max {
			truncated = len(diags) - v.max
			break
		}
		enc.Encode(jsonFinding{
			Target:   name,
			Severity: d.Sev.String(),
			Rule:     d.Rule,
			Pos: jsonPos{
				Module: d.Pos.Module,
				Func:   d.Pos.Func,
				Block:  d.Pos.Block,
				Instr:  d.Pos.Instr,
				Term:   d.Pos.Term,
			},
			Msg: d.Msg,
		})
	}
	enc.Encode(jsonSummary{
		Target:    name,
		Summary:   true,
		Errors:    diags.Errors(),
		Warnings:  diags.Warnings(),
		Infos:     diags.Infos(),
		Truncated: truncated,
	})
	v.errors += diags.Errors()
}
