package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestGoldens vets every corpus file and compares the report against its
// checked-in .want golden, including the exit code implied by the golden
// (1 iff it mentions a nonzero error count).
func TestGoldens(t *testing.T) {
	irs, err := filepath.Glob("testdata/*.ir")
	if err != nil || len(irs) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, irFile := range irs {
		irFile := irFile
		t.Run(filepath.Base(irFile), func(t *testing.T) {
			want, err := os.ReadFile(strings.TrimSuffix(irFile, ".ir") + ".want")
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			var out, errw bytes.Buffer
			code := run([]string{"-input", irFile}, &out, &errw)
			if out.String() != string(want) {
				t.Errorf("report mismatch:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
			}
			wantCode := 0
			if strings.Contains(string(want), "error") && !strings.Contains(string(want), "0 errors,") {
				wantCode = 1
			}
			if code != wantCode {
				t.Errorf("exit code = %d, want %d", code, wantCode)
			}
		})
	}
}

// TestGoldensJSON is TestGoldens for -format json: every corpus file's
// machine-readable report must match its .want.json golden byte for byte,
// every line must parse as a JSON object, and the exit code must agree
// with the text-format run.
func TestGoldensJSON(t *testing.T) {
	irs, err := filepath.Glob("testdata/*.ir")
	if err != nil || len(irs) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, irFile := range irs {
		irFile := irFile
		t.Run(filepath.Base(irFile), func(t *testing.T) {
			want, err := os.ReadFile(strings.TrimSuffix(irFile, ".ir") + ".want.json")
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			var out, errw bytes.Buffer
			code := run([]string{"-format", "json", "-input", irFile}, &out, &errw)
			if out.String() != string(want) {
				t.Errorf("report mismatch:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
			}
			var textOut, textErr bytes.Buffer
			if textCode := run([]string{"-input", irFile}, &textOut, &textErr); code != textCode {
				t.Errorf("json exit code = %d, text exit code = %d", code, textCode)
			}
			sawSummary := false
			for _, line := range strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n") {
				var obj map[string]any
				if err := json.Unmarshal([]byte(line), &obj); err != nil {
					t.Errorf("line is not a JSON object: %v\n%s", err, line)
					continue
				}
				if obj["summary"] == true {
					sawSummary = true
				}
			}
			if !sawSummary {
				t.Errorf("no summary object in:\n%s", out.String())
			}
		})
	}
}

// TestMaxCapJSON checks -format json truncation: printed findings stop at
// -max but the summary still carries the full counts plus how many were
// dropped.
func TestMaxCapJSON(t *testing.T) {
	var out, errw bytes.Buffer
	run([]string{"-format", "json", "-input", filepath.Join("testdata", "dead_store.ir"), "-max", "1"}, &out, &errw)
	s := out.String()
	if got := strings.Count(s, `"rule":"dead-store"`); got != 1 {
		t.Errorf("printed %d findings, want 1 after truncation:\n%s", got, s)
	}
	if !strings.Contains(s, `"warnings":2`) || !strings.Contains(s, `"truncated":1`) {
		t.Errorf("summary must count all findings and the truncation:\n%s", s)
	}
}

// TestFormatErrors checks an unknown -format is a usage error.
func TestFormatErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-format", "yaml", "-app", "bst"}, &out, &errw); code != 2 {
		t.Errorf("run(-format yaml) = %d, want 2", code)
	}
}

// TestDeterministic re-runs the linter many times over the same inputs and
// requires byte-identical reports: the dataflow engine must not leak map
// iteration or allocation order into its findings.
func TestDeterministic(t *testing.T) {
	irs, _ := filepath.Glob("testdata/*.ir")
	var first string
	for i := 0; i < 20; i++ {
		var out bytes.Buffer
		for _, irFile := range irs {
			run([]string{"-input", irFile}, &out, &out)
		}
		if i == 0 {
			first = out.String()
			continue
		}
		if out.String() != first {
			t.Fatalf("run %d differs from run 0:\n%s", i, out.String())
		}
	}
}

// TestCatalogNoErrors is the CI gate in test form: every catalog app must
// vet with zero error-severity findings at both the IR and ISA layers.
func TestCatalogNoErrors(t *testing.T) {
	for _, spec := range workload.Catalog() {
		var out, errw bytes.Buffer
		if code := run([]string{"-app", spec.Name}, &out, &errw); code != 0 {
			t.Errorf("%s: pcvet exit %d\n%s%s", spec.Name, code, out.String(), errw.String())
		}
	}
}

// TestUsageErrors checks the flag-validation paths exit 2.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // no target
		{"-app", "bst", "-all"},             // two targets
		{"-input", "x.ir", "stray-arg"},     // positional arg
		{"-app", "bst", "-bin", "prog.pcb"}, // two targets again
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestBinaryTarget compiles a catalog app to a .pcb and vets the binary:
// the ISA linter and the embedded-IR linter must both run and agree with
// the zero-error catalog gate.
func TestBinaryTarget(t *testing.T) {
	spec := workload.MustByName("bst")
	bin, err := spec.CompileProtean()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bst.pcb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bin.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errw bytes.Buffer
	if code := run([]string{"-bin", path}, &out, &errw); code != 0 {
		t.Fatalf("pcvet -bin exit %d\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "0 errors,") {
		t.Fatalf("missing summary line:\n%s", out.String())
	}
}

// TestReportFile checks -report duplicates the findings into a file.
func TestReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out, errw bytes.Buffer
	if code := run([]string{"-app", "bst", "-report", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out.String() {
		t.Fatalf("report file differs from stdout:\nfile:\n%s\nstdout:\n%s", data, out.String())
	}
}

// TestMaxCap checks per-target truncation keeps the summary line intact.
func TestMaxCap(t *testing.T) {
	var out, errw bytes.Buffer
	run([]string{"-input", filepath.Join("testdata", "dead_store.ir"), "-max", "1"}, &out, &errw)
	s := out.String()
	if !strings.Contains(s, "and 1 more finding(s)") {
		t.Errorf("missing truncation notice:\n%s", s)
	}
	if !strings.Contains(s, "2 warnings") {
		t.Errorf("summary must count all findings, not just printed ones:\n%s", s)
	}
}
