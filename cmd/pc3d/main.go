// Command pc3d runs one co-location experiment on the simulated server: a
// high-priority external application against a batch host managed by PC3D,
// ReQoS, or nothing, and reports utilization and QoS.
//
// Usage:
//
//	pc3d -host libquantum -ext web-search -target 0.95
//	pc3d -host sphinx3 -ext media-streaming -system reqos -target 0.98
//	pc3d -host lbm -ext er-naive -system none
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		host    = flag.String("host", "libquantum", "batch host application")
		ext     = flag.String("ext", "web-search", "high-priority external application")
		system  = flag.String("system", "pc3d", "mitigation system: pc3d|reqos|none")
		target  = flag.Float64("target", 0.95, "QoS target in (0,1]")
		settle  = flag.Float64("settle", 8, "settle time before measuring (simulated seconds)")
		measure = flag.Float64("measure", 2, "steady-state measurement window (simulated seconds)")
	)
	flag.Parse()

	var sys harness.System
	switch *system {
	case "pc3d":
		sys = harness.SystemPC3D
	case "reqos":
		sys = harness.SystemReQoS
	case "none":
		sys = harness.SystemNone
	default:
		fmt.Fprintf(os.Stderr, "pc3d: unknown system %q\n", *system)
		os.Exit(2)
	}

	sc := harness.FullScale()
	sc.SettleSeconds = *settle
	sc.MeasureSeconds = *measure
	r := harness.NewRunner(sc)

	pr, err := r.RunPair(*host, *ext, sys, *target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pc3d: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("host=%s ext=%s system=%s target=%.0f%%\n", pr.Host, pr.Ext, pr.System, pr.Target*100)
	fmt.Printf("  host utilization:   %.1f%% of solo throughput\n", pr.Utilization*100)
	fmt.Printf("  external QoS:       %.1f%% of solo IPS\n", pr.QoS*100)
	if sys == harness.SystemPC3D {
		fmt.Printf("  runtime cycles:     %.2f%% of server cycles\n", pr.RuntimeFrac*100)
		fmt.Printf("  searches:           %d (variant evals %d, nap probes %d, compiles %d)\n",
			pr.PC3D.Searches, pr.PC3D.VariantEvals, pr.PC3D.NapProbes, pr.PC3D.Compiles)
		fmt.Printf("  dispatched variant: %d non-temporal hints, nap %.2f\n",
			pr.PC3D.BestMaskSize, pr.PC3D.CurrentNap)
	}
}
