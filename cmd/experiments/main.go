// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                  # every artifact at quick scale
//	experiments -scale full      # full-scale reproduction (slow)
//	experiments -fig fig4        # one artifact
//	experiments -list            # show available artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		fig     = flag.String("fig", "", "single artifact key (e.g. fig4, table1); empty = all")
		scale   = flag.String("scale", "quick", "experiment scale: bench|quick|full")
		list    = flag.Bool("list", false, "list artifact keys")
		workers = flag.Int("workers", harness.DefaultWorkers(), "max concurrent experiment runs (1 = serial; results are identical at any setting)")
		engine  = flag.String("engine", "", "machine execution engine: superblock|interp (default: the machine default; engines are bit-identical)")
	)
	flag.Parse()

	if *list {
		for _, a := range harness.Artifacts() {
			fmt.Printf("%-8s %s\n", a.Key, a.Name)
		}
		return
	}

	var sc harness.Scale
	switch *scale {
	case "bench":
		sc = harness.BenchScale()
	case "quick":
		sc = harness.QuickScale()
	case "full":
		sc = harness.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	sc.Workers = *workers
	sc.Engine = *engine
	r := harness.NewRunner(sc)

	arts := harness.Artifacts()
	if *fig != "" {
		a, err := harness.ArtifactByKey(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v (try -list)\n", err)
			os.Exit(2)
		}
		arts = []harness.Artifact{a}
	}

	fmt.Printf("reproducing %d artifact(s) at %s scale\n\n", len(arts), sc.Name)
	for _, a := range arts {
		start := time.Now()
		tables, err := a.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", a.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("[%s done in %.1fs]\n\n", a.Name, time.Since(start).Seconds())
	}
}
