// Command pcrun loads a compiled .pcb binary and executes it on the
// simulated machine, reporting progress counters — the "run it" half of the
// pcc → pcrun toolchain.
//
// Usage:
//
//	pcc -app libquantum -o lq.pcb
//	pcrun -seconds 2 lq.pcb
//	pcrun -seconds 2 -stress 50ms lq.pcb   # with a recompilation stress runtime
//	pcrun -stress 50ms -metrics - -trace events.jsonl lq.pcb
//	pcrun -profile lq.folded -spans lq.trace.json lq.pcb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/progbin"
	"repro/internal/sampling"
	"repro/internal/telemetry"
)

func main() {
	var (
		seconds = flag.Float64("seconds", 1.0, "simulated run duration")
		stress  = flag.Duration("stress", 0, "attach a protean runtime recompiling random functions at this interval (0 = off)")
		sameCPU = flag.Bool("same-core", false, "run the stress runtime on the host's core")
		itrace  = flag.Int("itrace", 0, "dump the last N executed instructions at exit")
		engine  = flag.String("engine", machine.DefaultEngine, "execution engine: superblock|interp (bit-identical; interp is the single-step oracle)")

		metricsPath = flag.String("metrics", "", "write run telemetry in Prometheus text format to this file (- = stdout)")
		tracePath   = flag.String("trace", "", "write the telemetry event trace as JSONL to this file (- = stdout)")
		spansPath   = flag.String("spans", "", "write recorded spans + events as Chrome trace-event JSON (Perfetto-loadable) to this file (- = stdout)")
		profilePath = flag.String("profile", "", "sample the run and write a block-granular deep profile as folded stacks (- = stdout)")
		profFormat  = flag.String("profile-format", "folded", "deep profile format: folded|pprof-raw")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcrun [flags] <binary.pcb>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcrun: %v\n", err)
		os.Exit(1)
	}
	bin, err := progbin.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcrun: %v\n", err)
		os.Exit(1)
	}

	var reg *telemetry.Registry
	if *metricsPath != "" || *tracePath != "" || *spansPath != "" {
		reg = telemetry.New(telemetry.Config{})
	}
	m := machine.New(machine.Config{Cores: 2, Engine: *engine, Telemetry: reg})
	p, err := m.Attach(0, bin, machine.ProcessConfig{Restart: true, TraceDepth: *itrace})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcrun: %v\n", err)
		os.Exit(1)
	}
	var sampler *sampling.PCSampler
	if *profilePath != "" {
		sampler = sampling.NewPCSampler(p, m.Config().QuantumCycles)
		m.AddAgent(sampler)
	}

	var rt *core.Runtime
	if *stress > 0 {
		runtimeCore := 1
		if *sameCPU {
			runtimeCore = core.SameCore
		}
		rt, err = core.New(core.Config{Machine: m, Host: p, RuntimeCore: runtimeCore, Telemetry: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcrun: %v (compile with pcc without -plain for a protean binary)\n", err)
			os.Exit(1)
		}
		m.AddAgent(rt)
		m.AddAgent(core.NewStressRecompiler(rt, m.Cycles(stress.Seconds()), 1))
	}

	wall := time.Now()
	m.RunSeconds(*seconds)
	c := p.Counters()

	secs := m.NowSeconds()
	fmt.Printf("ran %q for %.2f simulated seconds (%.2fs wall)\n", p.Name(), secs, time.Since(wall).Seconds())
	fmt.Printf("  instructions:  %12d  (%.3g /s)\n", c.Insts, float64(c.Insts)/secs)
	fmt.Printf("  branches:      %12d  (%.3g /s)\n", c.Branches, float64(c.Branches)/secs)
	fmt.Printf("  loads:         %12d\n", c.Loads)
	fmt.Printf("  stores:        %12d\n", c.Stores)
	fmt.Printf("  prefetches:    %12d\n", c.Prefetches)
	fmt.Printf("  work units:    %12d\n", c.Completions)
	s := m.Hierarchy().CoreStats(0)
	fmt.Printf("  LLC accesses:  %12d  (miss rate %.1f%%)\n", s.LLCAccesses,
		100*float64(s.LLCMisses)/float64(max64(s.LLCAccesses, 1)))
	if rt != nil {
		fmt.Printf("  recompiles:    %12d  (runtime used %.2f%% of server cycles, %d code-cache words)\n",
			rt.Compiles(), rt.ServerCycleFraction()*100, rt.CodeCacheWords())
	}
	if *itrace > 0 {
		fmt.Printf("last %d executed instructions:\n", *itrace)
		for _, e := range p.Trace() {
			fn := ""
			if fi, ok := p.FuncAt(e.PC); ok {
				fn = fi.Name
				if fi.Variant > 0 {
					fn = fmt.Sprintf("%s#v%d", fn, fi.Variant)
				}
			}
			fmt.Printf("  cycle %12d  pc %6d  %s\n", e.Cycle, e.PC, fn)
		}
	}

	if *metricsPath != "" {
		if err := writeExport(*metricsPath, reg.WritePrometheus); err != nil {
			fmt.Fprintf(os.Stderr, "pcrun: %v\n", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		if err := writeExport(*tracePath, reg.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "pcrun: %v\n", err)
			os.Exit(1)
		}
	}
	if *spansPath != "" {
		if err := writeExport(*spansPath, reg.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "pcrun: %v\n", err)
			os.Exit(1)
		}
	}
	if *profilePath != "" {
		deep := sampler.DeepLifetime()
		var write func(w io.Writer) error
		switch *profFormat {
		case "folded":
			write = func(w io.Writer) error { return deep.WriteFolded(w, p.Name()) }
		case "pprof-raw":
			write = func(w io.Writer) error { return deep.WritePprofRaw(w, m.Config().QuantumCycles) }
		default:
			fmt.Fprintf(os.Stderr, "pcrun: unknown -profile-format %q (folded|pprof-raw)\n", *profFormat)
			os.Exit(2)
		}
		if err := writeExport(*profilePath, write); err != nil {
			fmt.Fprintf(os.Stderr, "pcrun: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeExport writes a telemetry export to path, with "-" meaning stdout.
func writeExport(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
