// Command pcc is the protean code compiler driver: it compiles a workload
// from the application catalog into a protean (or plain) binary image.
//
// Usage:
//
//	pcc -app libquantum -o libquantum.pcb
//	pcc -app libquantum -plain -o libquantum-plain.pcb
//	pcc -input prog.ir -o prog.pcb      # compile textual IR
//	pcc -app libquantum -dump-ir        # print the program's textual IR
//	pcc -app libquantum -dump-asm       # print the lowered machine code
//	pcc -list
//	pcc -app soplex -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ir"
	"repro/internal/ir/irtext"
	"repro/internal/pcc"
	"repro/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "", "application name from the catalog")
		input    = flag.String("input", "", "textual IR file to compile (alternative to -app)")
		out      = flag.String("o", "", "output file (default <app>.pcb)")
		plain    = flag.Bool("plain", false, "compile without the protean pass")
		policy   = flag.String("policy", "multi-block", "edge virtualization policy: multi-block|all-calls|no-edges")
		stats    = flag.Bool("stats", false, "print compilation statistics instead of writing a file")
		optimize = flag.Bool("O", false, "run the static optimization pipeline before lowering")
		dumpIR   = flag.Bool("dump-ir", false, "print the program's textual IR and exit")
		dumpAsm  = flag.Bool("dump-asm", false, "print the lowered machine code and exit")
		list     = flag.Bool("list", false, "list catalog applications")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-16s %-14s %-22s %s\n", "NAME", "SUITE", "CLASS", "DESCRIPTION")
		for _, s := range workload.Catalog() {
			fmt.Printf("%-16s %-14s %-22s %s\n", s.Name, s.Suite, s.Class, s.Description)
		}
		return
	}
	var mod *ir.Module
	var defaultName string
	switch {
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcc: %v\n", err)
			os.Exit(1)
		}
		mod, err = irtext.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcc: %v\n", err)
			os.Exit(1)
		}
		defaultName = mod.Name
	case *app != "":
		spec, ok := workload.ByName(*app)
		if !ok {
			fmt.Fprintf(os.Stderr, "pcc: unknown application %q (try -list)\n", *app)
			os.Exit(2)
		}
		mod = spec.Module()
		defaultName = spec.Name
	default:
		fmt.Fprintln(os.Stderr, "pcc: -app or -input is required (or -list)")
		os.Exit(2)
	}

	if *dumpIR {
		if err := irtext.Print(os.Stdout, mod); err != nil {
			fmt.Fprintf(os.Stderr, "pcc: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var pol pcc.EdgePolicy
	switch *policy {
	case "multi-block":
		pol = pcc.MultiBlockCallees
	case "all-calls":
		pol = pcc.AllCalls
	case "no-edges":
		pol = pcc.NoEdges
	default:
		fmt.Fprintf(os.Stderr, "pcc: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	bin, err := pcc.Compile(mod, pcc.Options{Protean: !*plain, Policy: pol, Optimize: *optimize})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcc: %v\n", err)
		os.Exit(1)
	}

	if *dumpAsm {
		prog := bin.Program
		for _, fi := range prog.Funcs {
			fmt.Printf("%s:  ; [%d,%d) variant %d\n", fi.Name, fi.Entry, fi.End, fi.Variant)
			for pc := fi.Entry; pc < fi.End; pc++ {
				fmt.Printf("  %5d  %s\n", pc, prog.Code[pc])
			}
		}
		for i, e := range prog.EVT {
			fmt.Printf("evt[%d] = @%s -> %d\n", i, e.Callee, e.Target)
		}
		return
	}

	st := pcc.StatsOf(bin)
	if *stats {
		fmt.Printf("app:                %s\n", defaultName)
		fmt.Printf("protean:            %v (policy %s)\n", !*plain, pol)
		fmt.Printf("code words:         %d\n", st.CodeWords)
		fmt.Printf("static loads:       %d\n", mod.NumLoads)
		fmt.Printf("virtualized calls:  %d\n", st.VirtualizedCalls)
		fmt.Printf("direct calls:       %d\n", st.DirectCalls)
		fmt.Printf("EVT slots:          %d\n", st.EVTSlots)
		fmt.Printf("embedded IR bytes:  %d (compressed)\n", st.IRBlobBytes)
		return
	}

	path := *out
	if path == "" {
		path = defaultName + ".pcb"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcc: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := bin.WriteTo(f); err != nil {
		fmt.Fprintf(os.Stderr, "pcc: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("pcc: wrote %s (%d code words, %d EVT slots, %d B IR)\n",
		path, st.CodeWords, st.EVTSlots, st.IRBlobBytes)
}
